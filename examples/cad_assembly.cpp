// CAD assembly: the domain the paper's work "was originally developed for"
// (Section 5.1, footnote): computer-aided-design environments where small
// objects are elements of larger structures.
//
// A three-level design hierarchy — Assembly -> SubAssembly -> Part — is
// spread over the cluster.  A design revision on an assembly nests
// sub-transactions down the hierarchy, touching only the geometry pages of
// each part (its bounding box and transform), while bulky mesh data is
// rarely updated.  This is exactly the access pattern that rewards LOTEC:
// each part object spans several pages but a revision updates (and the
// compiler predicts) only a couple, so LOTEC transfers far fewer bytes
// than COTEC's whole-object moves.  The example runs the same revision
// workload under COTEC and LOTEC and prints the traffic side by side.
//
// Run:  ./cad_assembly
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "runtime/cluster.hpp"

using namespace lotec;

namespace {

constexpr int kAssemblies = 4;
constexpr int kSubPerAssembly = 3;
constexpr int kPartsPerSub = 4;
constexpr int kRevisions = 120;

struct DesignTree {
  std::vector<ObjectId> assemblies;
  std::vector<std::vector<ObjectId>> subs;    // per assembly
  std::vector<std::vector<ObjectId>> parts;   // per sub (flattened)
};

/// Payload telling a revision which children to walk.
struct RevisionPlan {
  std::vector<ObjectId> subassemblies;
  std::vector<std::vector<ObjectId>> parts_per_sub;  // aligned with above
};

const RevisionPlan& plan_of(MethodContext& ctx) {
  const auto* plan = static_cast<const RevisionPlan*>(ctx.user_data());
  if (plan == nullptr)
    throw UsageError("cad_assembly: missing RevisionPlan payload");
  return *plan;
}

std::uint64_t run_design_workload(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.nodes = 6;
  cfg.protocol = protocol;
  cfg.seed = 31;
  Cluster cluster(cfg);

  // Part: mostly bulky mesh data; a revision touches only geometry.
  const ClassId part_cls = cluster.define_class(
      ClassBuilder("Part", cfg.page_size)
          .attribute("bbox", 64)
          .attribute("transform", 128)
          .attribute("revision", 8)
          .attribute("mesh", cfg.page_size * 6)   // 6 pages of mesh
          .attribute("materials", cfg.page_size)  // 1 page
          .method("revise_geometry",
                  {"bbox", "transform", "revision"},
                  {"bbox", "transform", "revision"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>(
                        "revision", ctx.get<std::int64_t>("revision") + 1);
                    ctx.set<double>("transform", 1.5);
                    ctx.set<double>("bbox", 2.5);
                  })
          .method("remesh", {"mesh", "revision"}, {"mesh", "revision"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>(
                        "revision", ctx.get<std::int64_t>("revision") + 1);
                    ctx.set<double>("mesh", 3.5);
                  }));

  const ClassId sub_cls = cluster.define_class(
      ClassBuilder("SubAssembly", cfg.page_size)
          .attribute("revision", 8)
          .attribute("layout", 512)
          .method("revise", {"revision", "layout"}, {"revision", "layout"},
                  [](MethodContext& ctx) {
                    const RevisionPlan& plan = plan_of(ctx);
                    // Find which subassembly we are to pick our part list.
                    std::size_t self = 0;
                    while (self < plan.subassemblies.size() &&
                           plan.subassemblies[self] != ctx.target())
                      ++self;
                    for (const ObjectId part : plan.parts_per_sub.at(self))
                      if (!ctx.invoke(part, "revise_geometry")) ctx.abort();
                    ctx.set<std::int64_t>(
                        "revision", ctx.get<std::int64_t>("revision") + 1);
                  }));

  const ClassId assembly_cls = cluster.define_class(
      ClassBuilder("Assembly", cfg.page_size)
          .attribute("revision", 8)
          .attribute("bom", 1024)
          .method("revise", {"revision", "bom"}, {"revision", "bom"},
                  [](MethodContext& ctx) {
                    for (const ObjectId sub : plan_of(ctx).subassemblies)
                      if (!ctx.invoke(sub, "revise")) ctx.abort();
                    ctx.set<std::int64_t>(
                        "revision", ctx.get<std::int64_t>("revision") + 1);
                  }));

  // Build the design tree, spreading objects over the cluster.
  DesignTree tree;
  for (int a = 0; a < kAssemblies; ++a) {
    tree.assemblies.push_back(cluster.create_object(assembly_cls));
    tree.subs.emplace_back();
    for (int s = 0; s < kSubPerAssembly; ++s) {
      tree.subs.back().push_back(cluster.create_object(sub_cls));
      tree.parts.emplace_back();
      for (int p = 0; p < kPartsPerSub; ++p)
        tree.parts.back().push_back(cluster.create_object(part_cls));
    }
  }

  // Revision workload: each root revises one assembly's whole hierarchy.
  Rng rng(5);
  std::vector<RootRequest> requests;
  for (int i = 0; i < kRevisions; ++i) {
    const int a = static_cast<int>(rng.below(kAssemblies));
    auto plan = std::make_shared<RevisionPlan>();
    plan->subassemblies = tree.subs[a];
    for (int s = 0; s < kSubPerAssembly; ++s)
      plan->parts_per_sub.push_back(
          tree.parts[static_cast<std::size_t>(a * kSubPerAssembly + s)]);

    RootRequest req;
    req.object = tree.assemblies[static_cast<std::size_t>(a)];
    req.method = cluster.method_id(req.object, "revise");
    req.user_data = std::move(plan);
    requests.push_back(std::move(req));
  }
  const auto results = cluster.execute(std::move(requests));

  int committed = 0;
  for (const auto& r : results) committed += r.committed ? 1 : 0;
  std::int64_t revisions = 0;
  for (const auto& a : tree.assemblies)
    revisions += cluster.peek<std::int64_t>(a, "revision");
  std::cout << "  " << to_string(protocol) << ": committed " << committed
            << "/" << kRevisions << " revisions (ledger " << revisions
            << "), traffic " << cluster.observe().stats().total().messages
            << " msgs / " << cluster.observe().stats().total().bytes << " bytes\n";
  return cluster.observe().stats().total().bytes;
}

}  // namespace

int main() {
  std::cout << "CAD design-revision workload (" << kAssemblies
            << " assemblies x " << kSubPerAssembly << " subassemblies x "
            << kPartsPerSub << " parts):\n";
  const std::uint64_t cotec = run_design_workload(ProtocolKind::kCotec);
  const std::uint64_t lotec = run_design_workload(ProtocolKind::kLotec);
  std::cout << "LOTEC moved " << (cotec - lotec) * 100 / cotec
            << "% fewer bytes than COTEC: revisions touch only each part's "
               "geometry pages,\nand LOTEC's access prediction keeps the "
               "bulky mesh pages off the wire.\n";
  return lotec < cotec ? 0 : 1;
}
