// Bank: nested object transactions over an account population.
//
// The classic motivating workload for closed nested transactions: a
// `transfer` on a Teller object invokes `withdraw` and `deposit`
// sub-transactions on two Account objects.  `withdraw` aborts on
// insufficient funds; closed-nesting semantics then roll the whole transfer
// back — no money is created or destroyed, which this example verifies
// after hundreds of concurrent transfers submitted from every node.
//
// Per-transfer parameters (from, to, amount) ride on the family's
// user_data payload, visible to every sub-transaction via MethodContext.
//
// Run:  ./bank
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "runtime/cluster.hpp"

using namespace lotec;

namespace {

struct TransferPlan {
  ObjectId from;
  ObjectId to;
  std::int64_t amount = 0;
};

const TransferPlan& plan_of(MethodContext& ctx) {
  const auto* plan = static_cast<const TransferPlan*>(ctx.user_data());
  if (plan == nullptr) throw UsageError("bank: missing TransferPlan payload");
  return *plan;
}

constexpr int kAccounts = 16;
constexpr std::int64_t kInitialBalance = 1000;
constexpr int kTransfers = 300;

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 2024;
  Cluster cluster(cfg);

  const ClassId account = cluster.define_class(
      ClassBuilder("Account", cfg.page_size)
          .attribute("balance", 8)
          .attribute("ops", 8)
          .method("open", {}, {"balance"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("balance", kInitialBalance);
                  })
          .method("withdraw", {"balance", "ops"}, {"balance", "ops"},
                  [](MethodContext& ctx) {
                    const std::int64_t balance =
                        ctx.get<std::int64_t>("balance");
                    const std::int64_t amount = plan_of(ctx).amount;
                    if (balance < amount) ctx.abort();  // insufficient funds
                    ctx.set<std::int64_t>("balance", balance - amount);
                    ctx.set<std::int64_t>("ops",
                                          ctx.get<std::int64_t>("ops") + 1);
                  })
          .method("deposit", {"balance", "ops"}, {"balance", "ops"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>(
                        "balance",
                        ctx.get<std::int64_t>("balance") + plan_of(ctx).amount);
                    ctx.set<std::int64_t>("ops",
                                          ctx.get<std::int64_t>("ops") + 1);
                  }));

  const ClassId teller = cluster.define_class(
      ClassBuilder("Teller", cfg.page_size)
          .attribute("transfers", 8)
          .method("transfer", {"transfers"}, {"transfers"},
                  [](MethodContext& ctx) {
                    const TransferPlan& plan = plan_of(ctx);
                    if (!ctx.invoke(plan.from, "withdraw"))
                      ctx.abort();  // roll the whole transfer back
                    if (!ctx.invoke(plan.to, "deposit")) ctx.abort();
                    ctx.set<std::int64_t>(
                        "transfers", ctx.get<std::int64_t>("transfers") + 1);
                  }));

  std::vector<ObjectId> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(cluster.create_object(account));
  for (const ObjectId a : accounts)
    if (!cluster.run_root(a, "open").committed) return 1;

  // One teller per node; transfers fan out over the whole cluster.
  std::vector<ObjectId> tellers;
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n)
    tellers.push_back(cluster.create_object(
        teller, NodeId(static_cast<std::uint32_t>(n))));

  Rng rng(7);
  std::vector<RootRequest> requests;
  for (int i = 0; i < kTransfers; ++i) {
    auto plan = std::make_shared<TransferPlan>();
    std::size_t from = rng.below(kAccounts);
    std::size_t to = rng.below(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    plan->from = accounts[from];
    plan->to = accounts[to];
    // Large enough that some transfers hit insufficient funds and abort.
    plan->amount = static_cast<std::int64_t>(rng.between(50, 900));

    RootRequest req;
    req.object = tellers[i % tellers.size()];
    req.method = cluster.method_id(req.object, "transfer");
    req.node = NodeId(static_cast<std::uint32_t>(i % cluster.num_nodes()));
    req.user_data = std::move(plan);
    requests.push_back(std::move(req));
  }

  const auto results = cluster.execute(std::move(requests));
  int committed = 0, insufficient = 0;
  for (const auto& r : results) {
    if (r.committed)
      ++committed;
    else
      ++insufficient;
  }

  std::int64_t total = 0, ledger_transfers = 0;
  for (const ObjectId a : accounts)
    total += cluster.peek<std::int64_t>(a, "balance");
  for (const ObjectId t : tellers)
    ledger_transfers += cluster.peek<std::int64_t>(t, "transfers");

  std::cout << "transfers: " << committed << " committed, " << insufficient
            << " rolled back (insufficient funds)\n"
            << "teller ledgers record " << ledger_transfers
            << " committed transfers\n"
            << "total money: " << total << " (expected "
            << kAccounts * kInitialBalance << ")\n";
  const TrafficCounter t = cluster.observe().stats().total();
  std::cout << "network: " << t.messages << " messages, " << t.bytes
            << " bytes\n";

  const bool ok = total == kAccounts * kInitialBalance &&
                  ledger_transfers == committed;
  std::cout << (ok ? "INVARIANTS HOLD\n" : "INVARIANT VIOLATION\n");
  return ok ? 0 : 1;
}
