// Failover: the GDO is partitioned AND replicated ("to ensure efficiency
// and reliability", Section 4.1).  This example kills an object's directory
// home node mid-run and shows lock service continuing from the mirror.
//
// Run:  ./failover
#include <cstdint>
#include <iostream>

#include "runtime/cluster.hpp"

using namespace lotec;

int main() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.gdo.replicate = true;  // mirror every directory entry
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const NodeId home = cluster.observe().gdo().home_of(obj);
  const NodeId mirror = cluster.observe().gdo().mirror_of(obj);
  std::cout << "object 0: directory home = node " << home.value()
            << ", mirror = node " << mirror.value() << "\n";

  // Work from the two nodes that are neither home nor mirror, so the
  // object's newest pages never live on the node we kill.
  const NodeId a((home.value() + 2) % 4);
  const NodeId b((home.value() + 3) % 4);

  for (int i = 0; i < 5; ++i)
    if (!cluster.run_root(obj, "increment", i % 2 ? a : b).committed)
      return 1;
  std::cout << "5 increments committed; killing directory home (node "
            << home.value() << ")\n";
  cluster.observe().transport().set_node_failed(home, true);

  for (int i = 0; i < 5; ++i) {
    const TxnResult r = cluster.run_root(obj, "increment", i % 2 ? a : b);
    if (!r.committed) {
      std::cerr << "transaction failed during failover\n";
      return 1;
    }
  }
  std::cout << "5 more increments committed against the mirror\n"
            << "final value = " << cluster.peek<std::int64_t>(obj, "value")
            << " (expected 10)\n"
            << "replication traffic: "
            << cluster.observe()
                   .stats()
                   .by_kind(MessageKind::kGdoReplicaSync)
                   .messages
            << " sync messages\n";
  return cluster.peek<std::int64_t>(obj, "value") == 10 ? 0 : 1;
}
