// Quickstart: the smallest complete LOTEC program.
//
// Creates a 4-node cluster running the LOTEC consistency protocol, defines
// a shared Counter class, and runs transactions against it from different
// nodes.  Note what the user code does NOT contain: no locks, no message
// passing, no page management — the runtime inserts lock acquisition and
// release around every method invocation (the paper's "automatic insertion
// of synchronization primitives") and moves pages per the LOTEC protocol.
//
// Run:  ./quickstart
#include <cstdint>
#include <iostream>

#include "runtime/cluster.hpp"

using namespace lotec;

int main() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  Cluster cluster(cfg);

  // A shared class: two attributes, two methods with compiler-style access
  // declarations (reads / writes).  Method bodies use typed accessors.
  const ClassId counter = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .attribute("label", 64)
          .method("increment", /*reads=*/{"value"}, /*writes=*/{"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  })
          .method("brand", /*reads=*/{}, /*writes=*/{"label"},
                  [](MethodContext& ctx) {
                    ctx.set_string("label", "hello from node " +
                                                std::to_string(
                                                    ctx.node().value()));
                  }));

  // The object's pages initially live at node 0.
  const ObjectId obj = cluster.create_object(counter, NodeId(0));

  // Each invocation is a root transaction; we spread them over the nodes so
  // the object's pages migrate under LOTEC's lazy transfers.
  for (int i = 0; i < 12; ++i) {
    const TxnResult r =
        cluster.run_root(obj, "increment", NodeId(i % 4));
    if (!r.committed) {
      std::cerr << "transaction aborted: " << to_string(r.reason) << '\n';
      return 1;
    }
  }
  (void)cluster.run_root(obj, "brand", NodeId(3));

  std::cout << "value = " << cluster.peek<std::int64_t>(obj, "value")
            << " (expected 12)\n"
            << "label = \"" << cluster.peek_string(obj, "label") << "\"\n";

  const TrafficCounter t = cluster.observe().stats().total();
  std::cout << "network: " << t.messages << " messages, " << t.bytes
            << " bytes to keep " << cluster.num_nodes()
            << " nodes consistent\n";
  return cluster.peek<std::int64_t>(obj, "value") == 12 ? 0 : 1;
}
