// ObjectLayout: attribute packing, page geometry, and the attribute->page
// analysis LOTEC's prediction rests on.
#include <gtest/gtest.h>

#include "page/layout.hpp"

namespace lotec {
namespace {

TEST(LayoutTest, SequentialAlignedPacking) {
  const ObjectLayout layout({{"a", 8}, {"b", 4}, {"c", 16}}, 64);
  EXPECT_EQ(layout.offset_of(AttrId(0)), 0u);
  EXPECT_EQ(layout.offset_of(AttrId(1)), 8u);
  // 4-byte attribute still aligns the next one to 8.
  EXPECT_EQ(layout.offset_of(AttrId(2)), 16u);
  EXPECT_EQ(layout.data_size(), 32u);
  EXPECT_EQ(layout.num_pages(), 1u);
}

TEST(LayoutTest, PageCountRoundsUp) {
  const ObjectLayout one({{"a", 64}}, 64);
  EXPECT_EQ(one.num_pages(), 1u);
  const ObjectLayout two({{"a", 65}}, 64);
  EXPECT_EQ(two.num_pages(), 2u);
}

TEST(LayoutTest, FindByName) {
  const ObjectLayout layout({{"x", 8}, {"y", 8}}, 64);
  EXPECT_EQ(layout.find("y"), AttrId(1));
  EXPECT_THROW((void)layout.find("z"), UsageError);
}

TEST(LayoutTest, AttributePagesSinglePage) {
  const ObjectLayout layout({{"a", 8}, {"b", 8}}, 64);
  EXPECT_EQ(layout.pages_of(AttrId(0)).to_string(), "{0}");
  EXPECT_EQ(layout.pages_of(AttrId(1)).to_string(), "{0}");
}

TEST(LayoutTest, AttributeStraddlesPages) {
  // 60-byte attr at offset 0, then a 16-byte attr at offset 64?  No:
  // align_up(60,8)=64, so b begins exactly at page 1.
  const ObjectLayout layout({{"a", 60}, {"b", 16}}, 64);
  EXPECT_EQ(layout.pages_of(AttrId(0)).to_string(), "{0}");
  EXPECT_EQ(layout.pages_of(AttrId(1)).to_string(), "{1}");

  // A big attribute spanning three pages.
  const ObjectLayout big({{"pad", 32}, {"blob", 140}}, 64);
  EXPECT_EQ(big.pages_of(AttrId(1)).to_string(), "{0,1,2}");
}

TEST(LayoutTest, PagesOfSetUnions) {
  const ObjectLayout layout({{"a", 64}, {"b", 64}, {"c", 64}}, 64);
  const PageSet s = layout.pages_of({AttrId(0), AttrId(2)});
  EXPECT_TRUE(s.contains(PageIndex(0)));
  EXPECT_FALSE(s.contains(PageIndex(1)));
  EXPECT_TRUE(s.contains(PageIndex(2)));
}

TEST(LayoutTest, RejectsBadInput) {
  EXPECT_THROW(ObjectLayout({}, 64), UsageError);
  EXPECT_THROW(ObjectLayout({{"a", 8}}, 0), UsageError);
  EXPECT_THROW(ObjectLayout({{"a", 0}}, 64), UsageError);
  const ObjectLayout layout({{"a", 8}}, 64);
  EXPECT_THROW((void)layout.attribute(AttrId(1)), UsageError);
  EXPECT_THROW(layout.pages_of(AttrId{}), UsageError);
}

class LayoutSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LayoutSweepTest, EveryByteOfEveryAttributeMapsIntoItsPages) {
  const auto [num_attrs, attr_size] = GetParam();
  std::vector<AttributeDef> attrs;
  for (int i = 0; i < num_attrs; ++i)
    attrs.push_back({"a" + std::to_string(i),
                     static_cast<std::uint32_t>(attr_size)});
  const ObjectLayout layout(attrs, 128);
  for (int i = 0; i < num_attrs; ++i) {
    const AttrId a(static_cast<std::uint32_t>(i));
    const PageSet pages = layout.pages_of(a);
    const std::uint64_t begin = layout.offset_of(a);
    for (std::uint64_t off = begin; off < begin + layout.attribute(a).size_bytes;
         ++off) {
      EXPECT_TRUE(pages.contains(
          PageIndex(static_cast<std::uint32_t>(off / 128))));
    }
    // And the page set is tight: no page outside the byte range.
    for (const PageIndex p : pages.to_vector()) {
      const std::uint64_t page_begin = std::uint64_t{p.value()} * 128;
      EXPECT_LT(page_begin, begin + layout.attribute(a).size_bytes);
      EXPECT_GE(page_begin + 128, begin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutSweepTest,
    ::testing::Values(std::tuple(1, 8), std::tuple(5, 24), std::tuple(3, 200),
                      std::tuple(16, 8), std::tuple(2, 1000),
                      std::tuple(7, 129)));

}  // namespace
}  // namespace lotec
