// sim/: report tables, experiment harness, scenario presets.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

TEST(ReportTest, TableAlignsColumns) {
  Table t({"name", "value"});
  t.row({"a", "1"}).row({"longer", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(ReportTest, CsvIsCommaSeparated) {
  Table t({"a", "b"});
  t.row({"1", "2"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(fmt_u64(1234), "1234");
  EXPECT_EQ(fmt_double(2.456, 1), "2.5");
  EXPECT_EQ(fmt_percent(0.256), "25.6%");
}

TEST(ReportTest, ShortRowsPadWithEmptyCells) {
  Table t({"a", "b", "c"});
  t.row({"1"});
  std::ostringstream oss;
  EXPECT_NO_THROW(t.print(oss));
}

TEST(ScenariosTest, PresetsMatchPaperGeometry) {
  const WorkloadSpec fig2 = scenarios::medium_high_contention();
  EXPECT_EQ(fig2.num_objects, 20u);
  EXPECT_EQ(fig2.min_pages, 1u);
  EXPECT_EQ(fig2.max_pages, 5u);
  const WorkloadSpec fig3 = scenarios::large_high_contention();
  EXPECT_EQ(fig3.min_pages, 10u);
  EXPECT_EQ(fig3.max_pages, 20u);
  const WorkloadSpec fig4 = scenarios::medium_moderate_contention();
  EXPECT_EQ(fig4.num_objects, 100u);
  EXPECT_LT(fig4.contention_theta, fig2.contention_theta);
  const WorkloadSpec fig5 = scenarios::large_moderate_contention();
  EXPECT_EQ(fig5.num_objects, 100u);
  EXPECT_EQ(fig5.min_pages, 10u);
}

TEST(ExperimentTest, ScenarioResultIsComplete) {
  WorkloadSpec spec;
  spec.num_objects = 6;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.num_transactions = 25;
  spec.seed = 13;
  const Workload workload(spec);
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 512;
  const ScenarioResult r =
      run_scenario(workload, ProtocolKind::kOtec, options);
  EXPECT_EQ(r.protocol, ProtocolKind::kOtec);
  EXPECT_EQ(r.object_ids.size(), 6u);
  EXPECT_EQ(r.committed + r.aborted, 25u);
  EXPECT_GT(r.total.messages, 0u);
  EXPECT_GT(r.counter("net.lock_messages"), 0u);
  EXPECT_GT(r.counter("net.page_messages"), 0u);
  // Per-object rows are queryable for every object.
  for (const ObjectId id : r.object_ids)
    EXPECT_LE(r.page_data.at(id).bytes, r.object_traffic(id).bytes);
}

TEST(ExperimentTest, SuiteRunsProtocolsIndependently) {
  WorkloadSpec spec;
  spec.num_objects = 5;
  spec.min_pages = 2;
  spec.max_pages = 4;
  spec.num_transactions = 20;
  spec.seed = 14;
  const Workload workload(spec);
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 512;
  const auto results = run_protocol_suite(
      workload, {ProtocolKind::kCotec, ProtocolKind::kLotec}, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].protocol, ProtocolKind::kCotec);
  EXPECT_EQ(results[1].protocol, ProtocolKind::kLotec);
  EXPECT_EQ(results[0].committed, results[1].committed);
}

TEST(ExperimentTest, PrefetchOptionReducesRoundTrips) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 2;
  spec.max_pages = 4;
  spec.num_transactions = 40;
  spec.contention_theta = 0.5;
  spec.seed = 15;
  const Workload workload(spec);
  ExperimentOptions plain;
  plain.nodes = 4;
  plain.page_size = 512;
  ExperimentOptions hinted = plain;
  hinted.prefetch_hints = true;
  const ScenarioResult without =
      run_scenario(workload, ProtocolKind::kLotec, plain);
  const ScenarioResult with =
      run_scenario(workload, ProtocolKind::kLotec, hinted);
  EXPECT_EQ(without.committed, with.committed);
  EXPECT_LT(with.counter("net.round_trips"), without.counter("net.round_trips"));
}

}  // namespace
}  // namespace lotec
