// Model-based testing of GdoService: thousands of random acquire / release
// / cancel operations are mirrored against a tiny reference lock model;
// after every step the directory's observable state (holder sets, modes,
// grant events) must match the model exactly.
//
// The reference model implements the multiple-readers/single-writer rules
// with FIFO queues, upgrade priority, upgrade-blocks-new-readers and read
// batch grants — the same semantics the production GdoService promises.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "gdo/gdo_service.hpp"

namespace lotec {
namespace {

struct ModelWaiter {
  std::uint64_t family;
  LockMode mode;
  bool upgrade;
};

/// Reference implementation of one object's lock.
class ModelLock {
 public:
  ModelLock(bool fair_readers, bool batch_grants)
      : fair_readers_(fair_readers), batch_grants_(batch_grants) {}

  /// Returns granted families in grant order (possibly several for read
  /// batches; empty if the request queued).
  std::vector<std::uint64_t> acquire(std::uint64_t family, LockMode mode) {
    if (holders_.count(family)) {
      // Must be an upgrade (read -> write).
      EXPECT_EQ(holders_.at(family), LockMode::kRead);
      if (holders_.size() == 1) {
        holders_[family] = LockMode::kWrite;
        return {family};
      }
      // Queue ahead of non-upgraders.
      std::size_t pos = 0;
      while (pos < queue_.size() && queue_[pos].upgrade) ++pos;
      queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                    {family, LockMode::kWrite, true});
      return {};
    }
    const bool upgrade_pending =
        std::any_of(queue_.begin(), queue_.end(),
                    [](const ModelWaiter& w) { return w.upgrade; });
    const bool writer_pending =
        std::any_of(queue_.begin(), queue_.end(), [](const ModelWaiter& w) {
          return w.mode == LockMode::kWrite;
        });
    const bool read_held =
        !holders_.empty() &&
        std::all_of(holders_.begin(), holders_.end(), [](const auto& h) {
          return h.second == LockMode::kRead;
        });
    if (holders_.empty() ||
        (read_held && mode == LockMode::kRead && !upgrade_pending &&
         !(fair_readers_ && writer_pending))) {
      holders_[family] = mode;
      return {family};
    }
    queue_.push_back({family, mode, false});
    return {};
  }

  std::vector<std::uint64_t> release(std::uint64_t family) {
    EXPECT_EQ(holders_.count(family), 1u);
    holders_.erase(family);
    std::erase_if(queue_,
                  [&](const ModelWaiter& w) { return w.family == family; });
    return pump();
  }

  std::vector<std::uint64_t> cancel(std::uint64_t family) {
    std::erase_if(queue_,
                  [&](const ModelWaiter& w) { return w.family == family; });
    return pump();
  }

  [[nodiscard]] bool holds(std::uint64_t family) const {
    return holders_.count(family) != 0;
  }
  [[nodiscard]] bool waits(std::uint64_t family) const {
    return std::any_of(queue_.begin(), queue_.end(), [&](const auto& w) {
      return w.family == family;
    });
  }
  [[nodiscard]] const std::map<std::uint64_t, LockMode>& holders() const {
    return holders_;
  }
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

 private:
  std::vector<std::uint64_t> pump() {
    std::vector<std::uint64_t> granted;
    while (!queue_.empty()) {
      const ModelWaiter w = queue_.front();
      if (w.upgrade) {
        if (holders_.size() == 1 && holders_.count(w.family)) {
          holders_[w.family] = LockMode::kWrite;
          granted.push_back(w.family);
          queue_.pop_front();
        }
        break;
      }
      if (w.mode == LockMode::kWrite) {
        if (holders_.empty()) {
          holders_[w.family] = LockMode::kWrite;
          granted.push_back(w.family);
          queue_.pop_front();
        }
        break;
      }
      const bool read_held =
          holders_.empty() ||
          std::all_of(holders_.begin(), holders_.end(), [](const auto& h) {
            return h.second == LockMode::kRead;
          });
      if (!read_held) break;
      holders_[w.family] = LockMode::kRead;
      granted.push_back(w.family);
      queue_.pop_front();
      if (!batch_grants_) break;  // single-grant mode pops one family
    }
    return granted;
  }

  bool fair_readers_;
  bool batch_grants_;
  std::map<std::uint64_t, LockMode> holders_;
  std::deque<ModelWaiter> queue_;
};

class GdoModelTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool, bool>> {
};

TEST_P(GdoModelTest, RandomOpsMatchReferenceModel) {
  const auto [seed, fair_readers, batch_grants] = GetParam();
  Transport transport(4);
  GdoConfig config;
  config.fair_readers = fair_readers;
  config.grant_read_batches = batch_grants;
  GdoService gdo(transport, config);
  const ObjectId obj(1);
  gdo.register_object(obj, 2, NodeId(0));

  std::vector<std::uint64_t> grant_events;
  gdo.set_grant_delivery(
      [&](const Grant& g) { grant_events.push_back(g.family.value()); });

  ModelLock model(fair_readers, batch_grants);
  Rng rng(seed);
  constexpr std::uint64_t kFamilies = 6;
  // Each family's serial counter (GDO wants distinct txn ids per request).
  std::map<std::uint64_t, std::uint32_t> serial;

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t fam = 1 + rng.below(kFamilies);
    const int op = static_cast<int>(rng.below(3));
    grant_events.clear();

    if (op == 0) {
      // Acquire (read, write or upgrade) — only legal transitions.
      if (model.waits(fam)) continue;  // one outstanding request per family
      LockMode mode;
      if (model.holds(fam)) {
        if (model.holders().at(fam) == LockMode::kWrite) continue;
        mode = LockMode::kWrite;  // upgrade
      } else {
        mode = rng.chance(0.5) ? LockMode::kRead : LockMode::kWrite;
      }
      const auto expected = model.acquire(fam, mode);
      const AcquireResult got = gdo.acquire(
          obj, TxnId{FamilyId(fam), serial[fam]++},
          NodeId(static_cast<std::uint32_t>(fam % 4)), mode);
      if (expected.empty()) {
        EXPECT_EQ(got.status, AcquireStatus::kQueued) << "step " << step;
      } else {
        ASSERT_EQ(expected.size(), 1u);
        EXPECT_EQ(expected[0], fam);
        EXPECT_EQ(got.status, AcquireStatus::kGranted) << "step " << step;
      }
    } else if (op == 1) {
      // Release (only if holding and not mid-upgrade).
      if (!model.holds(fam) || model.waits(fam)) continue;
      const auto expected = model.release(fam);
      (void)gdo.release_family(obj, FamilyId(fam),
                               NodeId(static_cast<std::uint32_t>(fam % 4)),
                               nullptr);
      EXPECT_EQ(grant_events, expected) << "step " << step;
    } else {
      // Cancel a queued request.
      if (!model.waits(fam)) continue;
      const bool was_upgrade = model.holds(fam);
      const auto expected = model.cancel(fam);
      (void)gdo.cancel_waiter(obj, FamilyId(fam));
      EXPECT_EQ(grant_events, expected) << "step " << step;
      (void)was_upgrade;
    }

    // Cross-check holder sets after every step.
    const GdoEntry entry = gdo.snapshot(obj);
    ASSERT_EQ(entry.holders.size(), model.holders().size())
        << "step " << step;
    for (const auto& [mfam, mmode] : model.holders()) {
      const auto it = entry.holders.find(FamilyId(mfam));
      ASSERT_NE(it, entry.holders.end()) << "step " << step;
      EXPECT_EQ(it->second.mode, mmode) << "step " << step;
    }
    EXPECT_EQ(entry.waiters.size(), model.queue_size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConfigs, GdoModelTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_fair" : "_paper") +
             (std::get<2>(info.param) ? "_batch" : "_single");
    });

}  // namespace
}  // namespace lotec
