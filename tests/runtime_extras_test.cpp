// Additional runtime coverage: deep nesting, multi-page attributes,
// fair-reader and release-ack configurations, concurrent-mode stress with
// quiescent validation, and script-driven mixed workload sanity.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

TEST(RuntimeExtrasTest, DeepNestingChain) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 64;
  cfg.seed = 31;
  Cluster cluster(cfg);

  // A chain of 24 cells, each invoking the next: nesting depth 24.
  constexpr int kChain = 24;
  const ClassId cls = cluster.define_class(
      ClassBuilder("Link", cfg.page_size)
          .attribute("v", 8)
          .method("ripple", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
            const auto* chain =
                static_cast<const std::vector<ObjectId>*>(ctx.user_data());
            // Invoke the next link, if any (this object's position is its
            // id's index in the chain).
            for (std::size_t i = 0; i + 1 < chain->size(); ++i) {
              if ((*chain)[i] == ctx.target()) {
                ASSERT_TRUE(ctx.invoke((*chain)[i + 1], "ripple"));
                break;
              }
            }
          }));
  auto chain = std::make_shared<std::vector<ObjectId>>();
  for (int i = 0; i < kChain; ++i)
    chain->push_back(cluster.create_object(cls));

  RootRequest req;
  req.object = chain->front();
  req.method = cluster.method_id(req.object, "ripple");
  req.user_data = chain;
  const auto results = cluster.execute({std::move(req)});
  ASSERT_TRUE(results[0].committed);
  EXPECT_EQ(results[0].txns_in_tree, static_cast<std::uint32_t>(kChain));
  for (const ObjectId link : *chain)
    EXPECT_EQ(cluster.peek<std::int64_t>(link, "v"), 1);
}

TEST(RuntimeExtrasTest, MultiPageAttributeRoundTrip) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.page_size = 64;
  cfg.seed = 32;
  Cluster cluster(cfg);
  // A 300-byte attribute spanning 5 pages, plus an 8-byte one.
  const ClassId cls = cluster.define_class(
      ClassBuilder("Blob", cfg.page_size)
          .attribute("data", 300)
          .attribute("len", 8)
          .method("fill", {}, {"data", "len"},
                  [](MethodContext& ctx) {
                    std::vector<std::byte> payload(300);
                    for (std::size_t i = 0; i < payload.size(); ++i)
                      payload[i] = static_cast<std::byte>(i % 251);
                    ctx.write_raw(ctx.cls().layout().find("data"), payload);
                    ctx.set<std::int64_t>("len", 300);
                  })
          .method("verify", {"data", "len"}, {},
                  [](MethodContext& ctx) {
                    EXPECT_EQ(ctx.get<std::int64_t>("len"), 300);
                    std::vector<std::byte> payload(300);
                    ctx.read_raw(ctx.cls().layout().find("data"), payload);
                    for (std::size_t i = 0; i < payload.size(); ++i)
                      ASSERT_EQ(payload[i], static_cast<std::byte>(i % 251));
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "fill", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(obj, "verify", NodeId(2)).committed);
}

TEST(RuntimeExtrasTest, FairReadersConfigStillCommitsEverything) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.num_transactions = 60;
  spec.read_method_fraction = 0.5;
  spec.contention_theta = 0.7;
  spec.seed = 61;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.gdo.fair_readers = true;
  cfg.seed = 8;
  Cluster cluster(cfg);
  for (const auto& r : cluster.execute(workload.instantiate(cluster)))
    EXPECT_TRUE(r.committed);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

TEST(RuntimeExtrasTest, ReleaseAcksAddMessagesOnly) {
  const auto run = [](bool acks) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.page_size = 64;
    cfg.gdo.release_acks = acks;
    cfg.seed = 9;
    Cluster cluster(cfg);
    const ClassId cls = cluster.define_class(
        ClassBuilder("C", 64).attribute("v", 8).method(
            "bump", {"v"}, {"v"}, [](MethodContext& ctx) {
              ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
            }));
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    for (int i = 0; i < 6; ++i)
      EXPECT_TRUE(cluster.run_root(obj, "bump", NodeId(1 + i % 3)).committed);
    return std::pair(cluster.peek<std::int64_t>(obj, "v"),
                     cluster.stats()
                         .by_kind(MessageKind::kLockReleaseAck)
                         .messages);
  };
  const auto [v_plain, acks_plain] = run(false);
  const auto [v_acked, acks_acked] = run(true);
  EXPECT_EQ(v_plain, 6);
  EXPECT_EQ(v_acked, 6);
  EXPECT_EQ(acks_plain, 0u);
  EXPECT_GT(acks_acked, 0u);
}

TEST(RuntimeExtrasTest, ConcurrentStressStaysConsistent) {
  WorkloadSpec spec;
  spec.num_objects = 10;
  spec.min_pages = 1;
  spec.max_pages = 4;
  spec.num_transactions = 150;
  spec.contention_theta = 0.8;
  spec.seed = 71;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.scheduler = SchedulerMode::kConcurrent;
  cfg.max_active_families = 12;
  cfg.seed = 10;
  Cluster cluster(cfg);
  std::size_t committed = 0;
  for (const auto& r : cluster.execute(workload.instantiate(cluster)))
    committed += r.committed ? 1 : 0;
  EXPECT_EQ(committed, spec.num_transactions);
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(RuntimeExtrasTest, MulticastOnlyAffectsRcPushTraffic) {
  const auto bytes_for = [](ProtocolKind protocol, bool multicast) {
    WorkloadSpec spec;
    spec.num_objects = 6;
    spec.min_pages = 2;
    spec.max_pages = 4;
    spec.num_transactions = 40;
    spec.seed = 81;
    const Workload workload(spec);
    ExperimentOptions options;
    options.nodes = 4;
    options.page_size = 256;
    options.multicast = multicast;
    return run_scenario(workload, protocol, options).total.bytes;
  };
  // Entry-consistency protocols never push one-to-many: multicast is moot.
  EXPECT_EQ(bytes_for(ProtocolKind::kLotec, false),
            bytes_for(ProtocolKind::kLotec, true));
  // RC's pushes collapse.
  EXPECT_GT(bytes_for(ProtocolKind::kRc, false),
            bytes_for(ProtocolKind::kRc, true));
}

}  // namespace
}  // namespace lotec
