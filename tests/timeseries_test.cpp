// PR 10 tentpole: the time-series telemetry plane (PROTOCOL.md §16).
// Covers the windowed-histogram edge cases (empty merge is a no-op, bucket
// counts saturate instead of wrapping), the collector's logical-tick
// windowing / retention ring / JSONL stream, the Prometheus text writer
// (golden output, hostile-name escaping, round-trip through the parser),
// and the population tail attribution — including the central identity:
// every root attempt's exclusive phase buckets sum to its sojourn ticks,
// on a real deterministic-scheduler run AND on synthetic corrupt input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/tail_attribution.hpp"
#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

WindowHistogram window_of(std::initializer_list<std::uint64_t> samples) {
  LatencyHistogram h;
  for (const std::uint64_t s : samples) h.record(s);
  return WindowHistogram::delta(h.snapshot(), HistogramSnapshot{});
}

// --- WindowHistogram edge cases ------------------------------------------

TEST(WindowHistogramTest, EmptyMergeIsAStrictNoOp) {
  WindowHistogram w = window_of({1, 5, 100, 9000});
  const WindowHistogram before = w;
  w.merge(WindowHistogram{});
  EXPECT_EQ(w, before);
  // Percentiles in particular must be unperturbed (min/max of an empty
  // window are zero — a careless merge would drag min down to 0).
  for (const double p : {0.0, 50.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(w.percentile(p), before.percentile(p)) << "p" << p;
}

TEST(WindowHistogramTest, MergingIntoAnEmptyWindowCopies) {
  const WindowHistogram src = window_of({7, 42});
  WindowHistogram dst;
  dst.merge(src);
  EXPECT_EQ(dst, src);
}

TEST(WindowHistogramTest, MergeCombinesCountsSumAndExtremes) {
  WindowHistogram a = window_of({1, 100});
  const WindowHistogram b = window_of({5000});
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 5101u);
  EXPECT_LE(a.min, 1u);
  EXPECT_GE(a.max, 5000u);
}

TEST(WindowHistogramTest, BucketCountsSaturateInsteadOfWrapping) {
  EXPECT_EQ(saturating_add_u32(0, 0), 0u);
  EXPECT_EQ(saturating_add_u32(1, 2), 3u);
  EXPECT_EQ(saturating_add_u32(0xFFFFFFFFu, 1), 0xFFFFFFFFu);
  EXPECT_EQ(saturating_add_u32(0xFFFFFFFEu, 5), 0xFFFFFFFFu);
  EXPECT_EQ(saturating_add_u32(5, ~std::uint64_t{0} - 4), 0xFFFFFFFFu);

  WindowHistogram a = window_of({100});
  WindowHistogram b = window_of({100});
  a.buckets[6] = 0xFFFFFFFFu;  // 100 lands in bucket 6: [63, 127)
  a.merge(b);
  EXPECT_EQ(a.buckets[6], 0xFFFFFFFFu) << "bucket wrapped on overflow";
  // The percentile walk stays monotonic on the pinned histogram.
  EXPECT_LE(a.percentile(50), a.percentile(99));
}

TEST(WindowHistogramTest, DeltaSubtractsCumulativeSnapshots) {
  LatencyHistogram h;
  h.record(3);
  h.record(9);
  const HistogramSnapshot prev = h.snapshot();
  h.record(100);
  const WindowHistogram w = WindowHistogram::delta(h.snapshot(), prev);
  EXPECT_EQ(w.count, 1u);
  EXPECT_EQ(w.sum, 100u);
  // min/max are bucket-resolution approximations clamped to the cumulative
  // max; the one recorded sample must lie inside them.
  EXPECT_LE(w.min, 100u);
  EXPECT_GE(w.max, 100u);
}

TEST(WindowHistogramTest, DeltaDegradesGracefullyAcrossARegistryReset) {
  LatencyHistogram before;
  for (int i = 0; i < 5; ++i) before.record(50);
  const HistogramSnapshot prev = before.snapshot();
  LatencyHistogram after;  // "reset": fewer cumulative samples than prev
  after.record(7);
  after.record(8);
  const WindowHistogram w = WindowHistogram::delta(after.snapshot(), prev);
  EXPECT_EQ(w, WindowHistogram::delta(after.snapshot(), HistogramSnapshot{}));
  EXPECT_EQ(w.count, 2u);
}

TEST(WindowHistogramTest, PercentileIsTotalOnAnyInput) {
  const WindowHistogram empty;
  EXPECT_EQ(empty.percentile(50), 0.0);
  const WindowHistogram w = window_of({10, 20, 30});
  EXPECT_EQ(w.percentile(std::nan("")), 0.0);
  EXPECT_EQ(w.percentile(-5), w.percentile(0));
  EXPECT_EQ(w.percentile(1e9), w.percentile(100));
}

// --- TimeseriesCollector --------------------------------------------------

TEST(TimeseriesCollectorTest, LogicalIntervalClosesWindowsWithDeltas) {
  MetricsRegistry registry;
  MetricsCounter& commits = registry.counter("txn.commits");
  TimeseriesConfig cfg;
  cfg.tick_interval = 10;
  TimeseriesCollector ts(registry, cfg);

  for (int i = 0; i < 25; ++i) {
    commits.add(2);
    ts.on_message();
  }
  EXPECT_EQ(ts.windows_closed(), 2u);
  ts.close_window();  // flush the trailing partial window
  EXPECT_EQ(ts.windows_closed(), 3u);

  const std::vector<std::string> names = ts.counter_names();
  std::ptrdiff_t commits_at = -1;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "txn.commits") commits_at = static_cast<std::ptrdiff_t>(i);
  ASSERT_GE(commits_at, 0);

  const std::vector<TimeseriesWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].open_tick, 0u);
  EXPECT_EQ(windows[0].close_tick, 10u);
  EXPECT_EQ(windows[1].close_tick, 20u);
  // 2 commits per message: 20 per full window, 10 in the 5-message tail.
  EXPECT_EQ(windows[0].counter_deltas[commits_at], 20u);
  EXPECT_EQ(windows[1].counter_deltas[commits_at], 20u);
  EXPECT_EQ(windows[2].counter_deltas[commits_at], 10u);
}

TEST(TimeseriesCollectorTest, RingRetainsOnlyTheLastNWindows) {
  MetricsRegistry registry;
  TimeseriesConfig cfg;
  cfg.tick_interval = 1;
  cfg.retain = 4;
  TimeseriesCollector ts(registry, cfg);
  for (int i = 0; i < 10; ++i) ts.on_message();
  EXPECT_EQ(ts.windows_closed(), 10u);
  const std::vector<TimeseriesWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 4u);
  for (std::size_t i = 0; i < windows.size(); ++i)
    EXPECT_EQ(windows[i].index, 6u + i) << "oldest-first order";
}

TEST(TimeseriesCollectorTest, MetricsRegisteredLaterJoinLaterWindows) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  TimeseriesConfig cfg;
  cfg.tick_interval = 0;  // explicit closes only
  TimeseriesCollector ts(registry, cfg);
  ts.close_window();
  EXPECT_EQ(ts.counter_names().size(), 1u);
  registry.counter("b").add(5);  // generation bump
  ts.close_window();
  const std::vector<std::string> names = ts.counter_names();
  EXPECT_EQ(names.size(), 2u);
  const std::vector<TimeseriesWindow> windows = ts.windows();
  ASSERT_EQ(windows.size(), 2u);
  // The later window carries the new counter's full value as its delta.
  std::ptrdiff_t b_at = -1;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == "b") b_at = static_cast<std::ptrdiff_t>(i);
  ASSERT_GE(b_at, 0);
  EXPECT_EQ(windows[1].counter_deltas[b_at], 5u);
}

TEST(TimeseriesCollectorTest, JsonlStreamWritesOneWellFormedLinePerWindow) {
  const std::string path = "timeseries_test_stream.jsonl";
  {
    MetricsRegistry registry;
    registry.counter("txn.commits");
    registry.histogram("span.family.attempt");
    TimeseriesConfig cfg;
    cfg.tick_interval = 5;
    cfg.jsonl_path = path;
    TimeseriesCollector ts(registry, cfg);
    for (int i = 0; i < 10; ++i) {
      registry.counter("txn.commits").add(1);
      registry.histogram("span.family.attempt").record(4 + i);
      ts.on_message();
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(json_wellformed(line)) << line;
    EXPECT_NE(line.find("\"window\":" + std::to_string(lines)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("txn.commits"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

// --- Prometheus text exposition ------------------------------------------

TEST(PrometheusTest, MetricNamesSanitizeToTheAllowedAlphabet) {
  EXPECT_EQ(prom_metric_name("txn.commits"), "lotec_txn_commits");
  EXPECT_EQ(prom_metric_name("lotec_already"), "lotec_already");
  const std::string evil = prom_metric_name("9 evil{name}\"\n");
  EXPECT_EQ(evil.rfind("lotec_", 0), 0u);
  for (const char c : evil)
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':')
        << "char " << static_cast<int>(c) << " in " << evil;
}

TEST(PrometheusTest, GoldenExpositionOutput) {
  std::map<std::string, std::uint64_t> counters{{"txn.commits", 42}};
  LatencyHistogram h;
  h.record(1);
  h.record(5);
  std::map<std::string, HistogramSnapshot> hists{
      {"span.family.attempt", h.snapshot()}};
  std::ostringstream os;
  write_prometheus_text(counters, hists, {{"node", "3"}}, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE lotec_txn_commits counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("lotec_txn_commits_total{node=\"3\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lotec_span_family_attempt histogram\n"),
            std::string::npos);
  // Bucket upper bounds follow the power-of-two layout (bucket i holds
  // [2^i - 1, 2^(i+1) - 1), le = 2^(i+1) - 2): the sample 1 lands in
  // bucket 1 (le="2"), the sample 5 in bucket 2 (le="6"), +Inf closes.
  EXPECT_NE(text.find("_bucket{node=\"3\",le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{node=\"3\",le=\"6\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{node=\"3\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lotec_span_family_attempt_sum{node=\"3\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("lotec_span_family_attempt_count{node=\"3\"} 2\n"),
            std::string::npos);
}

TEST(PrometheusTest, HostileLabelValuesEscapeAndRoundTrip) {
  // The json_escape hostile table, adapted: whatever lands in a label
  // value, the exposition must stay parseable and the value must survive
  // the round trip.
  const std::string hostile_cases[] = {
      "plain",
      "with \"quotes\" inside",
      "back\\slash",
      "newline\nin the middle",
      "trailing backslash\\",
      "\"} 999\nlotec_injected_total{x=\"y",  // tries to forge a sample
  };
  for (const std::string& value : hostile_cases) {
    std::ostringstream os;
    write_prometheus_text({{"m", 7}}, {}, {{"transport", value}}, os);
    const std::vector<PromSample> samples = parse_prometheus_text(os.str());
    ASSERT_EQ(samples.size(), 1u) << "hostile value forged a sample: "
                                  << value;
    EXPECT_EQ(samples[0].name, "lotec_m_total");
    EXPECT_EQ(samples[0].value, 7.0);
    ASSERT_EQ(samples[0].labels.size(), 1u);
    EXPECT_EQ(samples[0].labels[0].first, "transport");
    EXPECT_EQ(samples[0].labels[0].second, value) << "lossy escaping";
  }
}

TEST(PrometheusTest, WriterOutputRoundTripsThroughTheParser) {
  std::map<std::string, std::uint64_t> counters{
      {"a.one", 1}, {"b.two", 200}, {"c.three", 0}};
  LatencyHistogram h;
  for (const std::uint64_t v : {1ull, 7ull, 300ull, 9000ull}) h.record(v);
  std::map<std::string, HistogramSnapshot> hists{{"lat", h.snapshot()}};
  std::ostringstream os;
  write_prometheus_text(counters, hists, {{"node", "0"}, {"t", "uds"}}, os);
  const std::vector<PromSample> samples = parse_prometheus_text(os.str());

  std::map<std::string, double> by_name;
  for (const PromSample& s : samples) {
    by_name[s.name] += s.value;
    ASSERT_EQ(s.labels.size(), s.name.find("_bucket") == std::string::npos
                                   ? 2u
                                   : 3u);  // + le
  }
  EXPECT_EQ(by_name["lotec_a_one_total"], 1.0);
  EXPECT_EQ(by_name["lotec_b_two_total"], 200.0);
  EXPECT_EQ(by_name["lotec_c_three_total"], 0.0);
  EXPECT_EQ(by_name["lotec_lat_count"], 4.0);
  EXPECT_EQ(by_name["lotec_lat_sum"], 9308.0);
}

TEST(PrometheusTest, ParserRejectsGarbageLines) {
  EXPECT_THROW((void)parse_prometheus_text("{\"json\": true}"), Error);
  EXPECT_THROW((void)parse_prometheus_text("name_without_value\n"), Error);
  EXPECT_THROW((void)parse_prometheus_text("m{unclosed=\"x} 1\n"), Error);
  EXPECT_THROW((void)parse_prometheus_text("m not_a_number\n"), Error);
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_prometheus_text("# HELP x\n\n# TYPE x counter\n").empty());
}

// --- collector exposition ------------------------------------------------

TEST(TimeseriesCollectorTest, PrometheusViewCarriesWindowGauges) {
  MetricsRegistry registry;
  registry.counter("txn.commits").add(3);
  registry.histogram("span.family.attempt").record(12);
  TimeseriesConfig cfg;
  TimeseriesCollector ts(registry, cfg);
  ts.close_window();
  std::ostringstream os;
  ts.write_prometheus(os, {{"node", "coordinator"}});
  const std::vector<PromSample> samples = parse_prometheus_text(os.str());
  double window_deltas = 0, cumulative = 0, window_meta = 0;
  for (const PromSample& s : samples) {
    if (s.name == "lotec_window_delta") ++window_deltas;
    if (s.name == "lotec_window") ++window_meta;
    if (s.name == "lotec_txn_commits_total") cumulative = s.value;
  }
  EXPECT_EQ(cumulative, 3.0);
  EXPECT_GT(window_meta, 0.0) << "no lotec_window index/open/close gauges";
  EXPECT_GT(window_deltas, 0.0) << "no per-window delta gauges";
}

// --- tail attribution -----------------------------------------------------

SpanRecord make_span(std::uint64_t id, std::uint64_t parent, SpanPhase phase,
                     std::uint64_t begin, std::uint64_t end) {
  SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.phase = phase;
  s.family = 1;
  s.node = 0;
  s.begin = begin;
  s.end = end;
  s.trace = 77;
  return s;
}

TEST(TailAttributionTest, ClippedDecompositionOnSyntheticOverlaps) {
  // Root [0,100) with: lock [10,50), gdo [40,80) (overlaps the lock — the
  // earlier sibling wins the shared ticks), a wire child [90,150) spilling
  // past the root (clipped), and an orphan pointing at an unknown parent
  // (never reached, never counted).
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(1, 0, SpanPhase::kFamilyAttempt, 0, 100));
  spans.push_back(make_span(2, 1, SpanPhase::kLockAcquire, 10, 50));
  spans.push_back(make_span(3, 1, SpanPhase::kGdoRound, 40, 80));
  spans.push_back(make_span(4, 1, SpanPhase::kWireDeliver, 90, 150));
  spans.push_back(make_span(5, 999, SpanPhase::kUndo, 0, 1000));

  const TailAttribution ta = analyze_tail_attribution(spans);
  ASSERT_EQ(ta.attempts.size(), 1u);
  const AttemptAttribution& a = ta.attempts[0];
  EXPECT_EQ(a.sojourn, 100u);

  const auto at = [&](TailBucket b) {
    return a.buckets[static_cast<std::size_t>(b)];
  };
  EXPECT_EQ(at(TailBucket::kLockWait), 40u);   // [10,50)
  EXPECT_EQ(at(TailBucket::kGdoRound), 30u);   // [50,80) after the clip
  EXPECT_EQ(at(TailBucket::kWire), 10u);       // [90,100), overflow clipped
  EXPECT_EQ(at(TailBucket::kUndo), 0u);        // orphan never attributed
  EXPECT_EQ(at(TailBucket::kOther), 20u);      // root self time
  std::uint64_t sum = 0;
  for (const std::uint64_t b : a.buckets) sum += b;
  EXPECT_EQ(sum, a.sojourn);
}

TEST(TailAttributionTest, BucketsSumToSojournOnADeterministicRun) {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 60;
  const Workload workload(spec);
  ExperimentOptions options;
  options.nodes = 8;
  options.trace_spans = true;
  const ScenarioResult r =
      run_scenario(workload, ProtocolKind::kLotec, options);
  ASSERT_FALSE(r.spans.empty());

  const TailAttribution ta = analyze_tail_attribution(r.spans);
  ASSERT_FALSE(ta.empty());

  // The §16 identity, for EVERY attempt in the population — not only the
  // slowest one the critical path analyzes.
  std::uint64_t population_sojourn = 0;
  for (const AttemptAttribution& a : ta.attempts) {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : a.buckets) sum += b;
    EXPECT_EQ(sum, a.sojourn) << "attempt " << a.root;
    population_sojourn += a.sojourn;
  }

  // Bands partition the population exactly.
  std::uint64_t band_attempts = 0, band_sojourn = 0;
  for (const TailBand& band : ta.bands) {
    band_attempts += band.attempts;
    band_sojourn += band.sojourn;
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : band.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, band.sojourn) << band.label;
  }
  EXPECT_EQ(band_attempts, ta.attempts.size());
  EXPECT_EQ(band_sojourn, population_sojourn);

  // Attempts are sorted by sojourn, so the band split is meaningful.
  for (std::size_t i = 1; i < ta.attempts.size(); ++i)
    EXPECT_GE(ta.attempts[i].sojourn, ta.attempts[i - 1].sojourn);

  // On a contended run, real protocol work (not just "other") shows up.
  const TailBand& p0 = ta.bands[0];
  std::uint64_t protocol_ticks = 0;
  for (std::size_t k = 0; k + 1 < kNumTailBuckets; ++k)
    protocol_ticks += p0.buckets[k];
  EXPECT_GT(protocol_ticks, 0u) << "no span-covered work in the p0-50 band";

  // The report renders without touching the stream's error state.
  std::ostringstream os;
  write_tail_attribution(ta, os);
  EXPECT_NE(os.str().find("p99.9-100"), std::string::npos);
}

TEST(TimeseriesCollectorTest, TelemetryOffAndOnAreBitIdentical) {
  // The ablation_obs gating discipline, asserted at unit level: installing
  // the collector changes NOTHING the protocol can see — accounted traffic
  // and the span stream are byte-for-byte identical, because the collector
  // only ever reads counters at the transport choke point.
  auto run = [](bool telemetry) {
    WorkloadSpec spec = scenarios::medium_high_contention();
    spec.num_transactions = 40;
    const Workload workload(spec);
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.obs.trace_spans = true;
    cfg.obs.timeseries = telemetry;
    cfg.obs.timeseries_interval = 64;
    Cluster cluster(cfg);
    const auto results = cluster.execute(workload.instantiate(cluster));
    std::size_t committed = 0;
    for (const TxnResult& r : results) committed += r.committed ? 1 : 0;
    return std::tuple(committed, cluster.stats().total().messages,
                      cluster.stats().total().bytes,
                      cluster.observe().spans());
  };
  const auto [c_off, m_off, b_off, spans_off] = run(false);
  const auto [c_on, m_on, b_on, spans_on] = run(true);
  EXPECT_EQ(c_off, c_on);
  EXPECT_EQ(m_off, m_on);
  EXPECT_EQ(b_off, b_on);
  ASSERT_EQ(spans_off.size(), spans_on.size());
  for (std::size_t i = 0; i < spans_off.size(); ++i)
    ASSERT_EQ(spans_off[i], spans_on[i]) << "span " << i << " diverged";
}

TEST(TailAttributionTest, EmptyInputYieldsEmptyReport) {
  const TailAttribution ta = analyze_tail_attribution({});
  EXPECT_TRUE(ta.empty());
  std::ostringstream os;
  write_tail_attribution(ta, os);
  EXPECT_NE(os.str().find("0 root family attempts"), std::string::npos);
}

}  // namespace
}  // namespace lotec
