// Elastic directory (PROTOCOL.md §15): consistent-hash ring properties
// (balance, monotonicity, determinism), online shard migration under
// membership churn, quorum mirror groups, and the ring-ownership oracle —
// no entry may be lost or double-served across join/leave cycles.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "check/oracles.hpp"
#include "ring/hash_ring.hpp"
#include "runtime/cluster.hpp"
#include "sim/validate.hpp"

namespace lotec {
namespace {

using check::FanoutSink;
using check::RingOwnershipOracle;
using check::SerializabilityOracle;

// --- pure ring properties ---------------------------------------------------

constexpr std::uint64_t kRingSeed = 0xB0A7;

std::map<std::uint32_t, std::size_t> load_of(const HashRing& ring,
                                             std::uint64_t ids) {
  std::map<std::uint32_t, std::size_t> load;
  for (const NodeId n : ring.members()) load[n.value()] = 0;
  for (std::uint64_t i = 0; i < ids; ++i)
    ++load[ring.owner_of(ObjectId(i)).value()];
  return load;
}

TEST(HashRingTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(HashRing(1, 0), UsageError);
  HashRing ring(kRingSeed, 8);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner_of(ObjectId(1)), UsageError);
}

TEST(HashRingTest, MembershipIsIdempotent) {
  HashRing ring(kRingSeed, 8);
  EXPECT_TRUE(ring.add_node(NodeId(3)));
  EXPECT_FALSE(ring.add_node(NodeId(3)));
  EXPECT_TRUE(ring.contains(NodeId(3)));
  EXPECT_EQ(ring.num_members(), 1u);
  EXPECT_TRUE(ring.remove_node(NodeId(3)));
  EXPECT_FALSE(ring.remove_node(NodeId(3)));
  EXPECT_TRUE(ring.empty());
}

TEST(HashRingTest, PlacementIsDeterministicInSeedAndMembership) {
  HashRing a(kRingSeed, 16);
  HashRing b(kRingSeed, 16);
  // Different insertion order, same membership.
  for (std::uint32_t n = 0; n < 8; ++n) a.add_node(NodeId(n));
  for (std::uint32_t n = 8; n-- > 0;) b.add_node(NodeId(n));
  for (std::uint64_t i = 0; i < 2000; ++i)
    ASSERT_EQ(a.owner_of(ObjectId(i)), b.owner_of(ObjectId(i))) << i;
  // A different seed places differently (tokens move).
  HashRing c(kRingSeed + 1, 16);
  for (std::uint32_t n = 0; n < 8; ++n) c.add_node(NodeId(n));
  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < 2000; ++i)
    if (a.owner_of(ObjectId(i)) != c.owner_of(ObjectId(i))) ++moved;
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, BalanceBoundWithEnoughVirtualNodes) {
  HashRing ring(kRingSeed, 64);
  const std::size_t members = 8;
  for (std::uint32_t n = 0; n < members; ++n) ring.add_node(NodeId(n));
  const std::uint64_t ids = 16384;
  const auto load = load_of(ring, ids);
  const double mean = static_cast<double>(ids) / members;
  for (const auto& [node, count] : load) {
    // 64 tokens/member keeps every member within 2x of the mean (the bound
    // is loose on purpose: the test must hold for any seed drift).
    EXPECT_GT(static_cast<double>(count), mean * 0.35)
        << "node " << node << " underloaded: " << count;
    EXPECT_LT(static_cast<double>(count), mean * 2.0)
        << "node " << node << " overloaded: " << count;
  }
}

TEST(HashRingTest, RemovalOnlyRemapsTheLeaversObjects) {
  HashRing before(kRingSeed, 32);
  for (std::uint32_t n = 0; n < 6; ++n) before.add_node(NodeId(n));
  HashRing after = before;
  const NodeId leaver(2);
  ASSERT_TRUE(after.remove_node(leaver));
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const NodeId was = before.owner_of(ObjectId(i));
    const NodeId now = after.owner_of(ObjectId(i));
    if (was != leaver)
      ASSERT_EQ(was, now) << "object " << i
                          << " remapped though its owner stayed";
    else
      ASSERT_NE(now, leaver);
  }
}

TEST(HashRingTest, AdditionOnlyStealsForTheJoiner) {
  HashRing before(kRingSeed, 32);
  for (std::uint32_t n = 0; n < 5; ++n) before.add_node(NodeId(n));
  HashRing after = before;
  const NodeId joiner(7);
  ASSERT_TRUE(after.add_node(joiner));
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const NodeId was = before.owner_of(ObjectId(i));
    const NodeId now = after.owner_of(ObjectId(i));
    if (was != now)
      ASSERT_EQ(now, joiner)
          << "object " << i << " moved to a node that did not join";
  }
}

TEST(HashRingTest, SuccessorsAreDistinctAndExcludeTheOwner) {
  HashRing ring(kRingSeed, 16);
  for (std::uint32_t n = 0; n < 6; ++n) ring.add_node(NodeId(n));
  for (std::uint64_t i = 0; i < 512; ++i) {
    const ObjectId id(i);
    const NodeId owner = ring.owner_of(id);
    const auto succ = ring.successors(id, 3);
    ASSERT_EQ(succ.size(), 3u);
    std::set<std::uint32_t> seen;
    for (const NodeId s : succ) {
      EXPECT_NE(s, owner);
      EXPECT_TRUE(seen.insert(s.value()).second) << "duplicate successor";
    }
  }
  // Asking for more successors than members yields every other member.
  const auto all = ring.successors(ObjectId(1), 16);
  EXPECT_EQ(all.size(), 5u);
}

// --- cluster-level migration ------------------------------------------------

ClassId define_counter(Cluster& cluster, std::uint32_t page_size) {
  return cluster.define_class(
      ClassBuilder("Counter", page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("value",
                                  ctx.get<std::int64_t>("value") + 1);
          }));
}

ClusterConfig ring_config(std::size_t nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.page_size = 256;
  cfg.gdo.replicate = true;
  cfg.gdo.ring.enabled = true;
  cfg.gdo.ring.virtual_nodes = 16;
  cfg.gdo.ring.mirror_group = 2;
  return cfg;
}

TEST(RingMigrationTest, LeaveMigratesEveryReownedEntry) {
  ClusterConfig cfg = ring_config(4);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 12; ++i)
    objs.push_back(cluster.create_object(cls, NodeId(i % 4)));

  for (const ObjectId obj : objs)
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(0)).committed);

  // Node 2 leaves the placement ring (it stays up as a site).
  GdoService& gdo = cluster.gdo();
  ASSERT_TRUE(gdo.ring_set_member(NodeId(2), false));
  EXPECT_EQ(gdo.ring_epoch(), 1u);
  EXPECT_EQ(gdo.ring_members().size(), 3u);
  gdo.drain_migrations();
  EXPECT_EQ(gdo.pending_migrations(), 0u);

  // Every entry now resides off node 2 and the directory still serves it.
  for (const ObjectId obj : objs) {
    EXPECT_NE(gdo.resident_of(obj), NodeId(2)) << obj.value();
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(1)).committed);
  }
  EXPECT_EQ(gdo.num_objects(), objs.size());  // nothing lost or duplicated
  for (const ObjectId obj : objs)
    EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 2);

  // The migration traffic was charged as real messages.
  EXPECT_GT(cluster.stats().by_kind(MessageKind::kShardMigrateRequest)
                .messages, 0u);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kShardMigrateRequest)
                .messages,
            cluster.stats().by_kind(MessageKind::kShardMigrateReply)
                .messages);
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(RingMigrationTest, StaleViewIsChargedARedirect) {
  ClusterConfig cfg = ring_config(4);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 16; ++i)
    objs.push_back(cluster.create_object(cls, NodeId(0)));
  GdoService& gdo = cluster.gdo();

  // Find an object owned by node 3 before it leaves: its post-leave lookup
  // from a stale-view requester must be misrouted to 3 and bounced.
  ObjectId moved{};
  bool found = false;
  for (const ObjectId obj : objs)
    if (gdo.resident_of(obj) == NodeId(3)) {
      moved = obj;
      found = true;
      break;
    }
  ASSERT_TRUE(found) << "no object placed at node 3; vary the seed";

  ASSERT_TRUE(gdo.ring_set_member(NodeId(3), false));
  gdo.drain_migrations();
  ASSERT_NE(gdo.resident_of(moved), NodeId(3));

  const auto before =
      cluster.stats().by_kind(MessageKind::kShardRedirect).messages;
  (void)gdo.lookup_page_map(moved, NodeId(1));
  const auto after =
      cluster.stats().by_kind(MessageKind::kShardRedirect).messages;
  EXPECT_EQ(after, before + 1)
      << "first post-change request from a stale node must bounce off the "
         "fenced ex-owner";

  // The requester's view is now current: no second redirect.
  (void)gdo.lookup_page_map(moved, NodeId(1));
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kShardRedirect).messages,
            after);
}

TEST(RingMigrationTest, JoinLeaveCyclesUnderLoadWithOracles) {
  ClusterConfig cfg = ring_config(4);
  cfg.gdo.ring.migration_batch = 2;
  // Three leave/join cycles over two victims, interleaved with the batch
  // (ticks low enough that the batch's message stream reaches all six).
  cfg.fault = fault_presets::rebalance({NodeId(1), NodeId(2)}, 3,
                                       /*first_tick=*/20, /*window=*/40);
  RingOwnershipOracle ring_oracle;
  SerializabilityOracle ser_oracle;
  FanoutSink fanout;
  fanout.add(&ring_oracle);
  fanout.add(&ser_oracle);
  cfg.check_sink = &fanout;
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 8; ++i)
    objs.push_back(cluster.create_object(cls, NodeId(i % 4)));

  const MethodId m = cluster.method_id(objs[0], "increment");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 64; ++i)
    reqs.push_back({objs[static_cast<std::size_t>(i) % objs.size()], m,
                    NodeId(static_cast<std::uint32_t>(i % 4)),
                    {},
                    nullptr});
  const auto results = cluster.execute(std::move(reqs));

  std::map<std::uint64_t, std::int64_t> expected;
  for (std::size_t i = 0; i < results.size(); ++i)
    if (results[i].committed)
      ++expected[objs[i % objs.size()].value()];
  for (const TxnResult& r : results)
    EXPECT_TRUE(r.committed);  // membership churn never kills a family

  for (const ObjectId obj : objs)
    EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"),
              expected[obj.value()])
        << "object " << obj.value();

  // The chaos actually exercised the machinery…
  EXPECT_GE(cluster.gdo().ring_epoch(), 6u);
  EXPECT_GT(ring_oracle.moves(), 0u);
  EXPECT_GT(ring_oracle.serves(), 0u);
  // …and both oracles stayed clean: no entry double-served or lost.
  const auto rv = ring_oracle.finish();
  EXPECT_FALSE(rv.has_value()) << rv->detail;
  const auto sv = ser_oracle.finish();
  EXPECT_FALSE(sv.has_value()) << sv->detail;
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(RingMigrationTest, QuorumGroupSurvivesResidentCrash) {
  // Mirror group k=2: any single survivor of the group can rebuild the
  // entry after its resident dies (the quorum guarantee).
  ClusterConfig cfg = ring_config(4);
  cfg.fault.install_hooks = true;  // chain failover + lease machinery
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  GdoService& gdo = cluster.gdo();

  ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(0)).committed);
  const NodeId res = gdo.resident_of(obj);

  // Pick two worker sites that are not the resident.
  std::vector<NodeId> workers;
  for (std::uint32_t n = 0; n < 4; ++n)
    if (NodeId(n) != res) workers.push_back(NodeId(n));

  cluster.transport().set_node_failed(res, true);
  gdo.on_node_crash(res);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(
        cluster.run_root(obj, "increment", workers[i % workers.size()])
            .committed)
        << "increment " << i << " failed while the resident was down";

  cluster.transport().set_node_failed(res, false);
  EXPECT_GE(gdo.rebuild_node(res), 1u);
  ASSERT_TRUE(cluster.run_root(obj, "increment", workers[0]).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 6);
}

TEST(RingMigrationTest, MigrationRecoversEntriesOfACrashedSource) {
  // A node leaves the ring *and* crashes before its shards migrate: the
  // migrator must recover each entry from the quorum mirror copies.
  ClusterConfig cfg = ring_config(4);
  cfg.fault.install_hooks = true;
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 10; ++i)
    objs.push_back(cluster.create_object(cls, NodeId(0)));
  GdoService& gdo = cluster.gdo();
  for (const ObjectId obj : objs)
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(0)).committed);

  // Find a node that owns at least one entry, then kill it unmigrated.
  NodeId victim{};
  for (std::uint32_t n = 1; n < 4 && !victim.valid(); ++n)
    for (const ObjectId obj : objs)
      if (gdo.resident_of(obj) == NodeId(n)) {
        victim = NodeId(n);
        break;
      }
  ASSERT_TRUE(victim.valid());

  cluster.transport().set_node_failed(victim, true);
  gdo.on_node_crash(victim);  // wipes its entries — only mirrors survive
  ASSERT_TRUE(gdo.ring_set_member(victim, false));
  gdo.drain_migrations();
  EXPECT_EQ(gdo.pending_migrations(), 0u);

  for (const ObjectId obj : objs) {
    EXPECT_NE(gdo.resident_of(obj), victim);
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(0)).committed);
    EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 2) << obj.value();
  }
}

// --- ring-ownership oracle self-test ---------------------------------------

TEST(RingOwnershipOracleTest, FlagsDoubleServe) {
  RingOwnershipOracle oracle;
  oracle.on_shard_serve(ObjectId(7), NodeId(0), 0);
  oracle.on_ring_change(1, NodeId(2), false);
  oracle.on_shard_move(ObjectId(7), NodeId(0), NodeId(1), 1);
  // Node 0 is fenced for object 7 now; a serve there is a violation.
  oracle.on_shard_serve(ObjectId(7), NodeId(1), 1);
  EXPECT_FALSE(oracle.finish().has_value());
  oracle.on_shard_serve(ObjectId(7), NodeId(0), 1);
  const auto v = oracle.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::string(v->oracle), "ring-ownership");
}

TEST(RingOwnershipOracleTest, FlagsMoveFromNonOwner) {
  RingOwnershipOracle oracle;
  oracle.on_shard_serve(ObjectId(3), NodeId(2), 0);
  oracle.on_ring_change(1, NodeId(2), false);
  oracle.on_shard_move(ObjectId(3), NodeId(1), NodeId(0), 1);
  EXPECT_TRUE(oracle.finish().has_value());
}

}  // namespace
}  // namespace lotec
