// End-to-end smoke tests of the Cluster runtime: transactions commit, data
// moves between sites, nested invocations work, and the oracle (peek) sees
// committed state.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

namespace lotec {
namespace {

ClusterConfig small_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = protocol;
  cfg.page_size = 256;
  cfg.seed = 42;
  return cfg;
}

ClassBuilder counter_class(std::uint32_t page_size) {
  return ClassBuilder("Counter", page_size)
      .attribute("value", 8)
      .attribute("updates", 8)
      .method("increment", {"value", "updates"}, {"value", "updates"},
              [](MethodContext& ctx) {
                ctx.set<std::int64_t>("value",
                                      ctx.get<std::int64_t>("value") + 1);
                ctx.set<std::int64_t>("updates",
                                      ctx.get<std::int64_t>("updates") + 1);
              })
      .method("read", {"value"}, {}, [](MethodContext& ctx) {
        (void)ctx.get<std::int64_t>("value");
      });
}

class RuntimeSmokeTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RuntimeSmokeTest, SingleIncrementCommits) {
  Cluster cluster(small_config(GetParam()));
  const ClassId cls = cluster.define_class(counter_class(256));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const TxnResult r = cluster.run_root(obj, "increment", NodeId(1));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 1);
}

TEST_P(RuntimeSmokeTest, ManyIncrementsFromAllNodesSerialize) {
  Cluster cluster(small_config(GetParam()));
  const ClassId cls = cluster.define_class(counter_class(256));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  constexpr int kTxns = 40;
  std::vector<RootRequest> reqs;
  const MethodId inc = cluster.method_id(obj, "increment");
  for (int i = 0; i < kTxns; ++i)
    reqs.push_back(RootRequest{obj, inc, NodeId(i % 4), {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));

  int committed = 0;
  for (const auto& r : results) committed += r.committed ? 1 : 0;
  EXPECT_EQ(committed, kTxns);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), kTxns);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "updates"), kTxns);
}

TEST_P(RuntimeSmokeTest, NestedTransferMovesMoney) {
  ClusterConfig cfg = small_config(GetParam());
  Cluster cluster(cfg);
  const ClassId account =
      cluster.define_class(ClassBuilder("Account", cfg.page_size)
                               .attribute("balance", 8)
                               .method("add100",
                                       {"balance"}, {"balance"},
                                       [](MethodContext& ctx) {
                                         ctx.set<std::int64_t>(
                                             "balance",
                                             ctx.get<std::int64_t>("balance") +
                                                 100);
                                       })
                               .method("sub100",
                                       {"balance"}, {"balance"},
                                       [](MethodContext& ctx) {
                                         ctx.set<std::int64_t>(
                                             "balance",
                                             ctx.get<std::int64_t>("balance") -
                                                 100);
                                       }));
  const ObjectId a = cluster.create_object(account, NodeId(0));
  const ObjectId b = cluster.create_object(account, NodeId(2));

  // A "Bank" object whose transfer method nests two sub-transactions.
  const ClassId bank = cluster.define_class(
      ClassBuilder("Bank", cfg.page_size)
          .attribute("transfers", 8)
          .method("transfer", {"transfers"}, {"transfers"},
                  [a, b](MethodContext& ctx) {
                    ASSERT_TRUE(ctx.invoke(a, "sub100"));
                    ASSERT_TRUE(ctx.invoke(b, "add100"));
                    ctx.set<std::int64_t>(
                        "transfers", ctx.get<std::int64_t>("transfers") + 1);
                  }));
  const ObjectId bk = cluster.create_object(bank, NodeId(3));

  for (int i = 0; i < 5; ++i) {
    const TxnResult r = cluster.run_root(bk, "transfer", NodeId(1));
    ASSERT_TRUE(r.committed);
    EXPECT_EQ(r.txns_in_tree, 3u);  // root + two children
  }
  EXPECT_EQ(cluster.peek<std::int64_t>(a, "balance"), -500);
  EXPECT_EQ(cluster.peek<std::int64_t>(b, "balance"), 500);
  EXPECT_EQ(cluster.peek<std::int64_t>(bk, "transfers"), 5);
}

TEST_P(RuntimeSmokeTest, UserAbortRollsBackWholeFamily) {
  ClusterConfig cfg = small_config(GetParam());
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(counter_class(cfg.page_size));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const ClassId aborter = cluster.define_class(
      ClassBuilder("Aborter", cfg.page_size)
          .attribute("pad", 8)
          .method("doomed", {}, {},
                  [obj](MethodContext& ctx) {
                    ASSERT_TRUE(ctx.invoke(obj, "increment"));
                    ctx.abort();  // roll back the increment too
                  }));
  const ObjectId ab = cluster.create_object(aborter, NodeId(1));

  const TxnResult r = cluster.run_root(ab, "doomed", NodeId(2));
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.reason, AbortReason::kUser);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 0);

  // The aborted family must have released everything: a fresh transaction
  // acquires and commits without contention.
  EXPECT_TRUE(cluster.run_root(obj, "increment", NodeId(3)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 1);
}

TEST_P(RuntimeSmokeTest, SubTransactionAbortKeepsParentAlive) {
  ClusterConfig cfg = small_config(GetParam());
  Cluster cluster(cfg);

  const ClassId flaky = cluster.define_class(
      ClassBuilder("Flaky", cfg.page_size)
          .attribute("scratch", 8)
          .method("failing_child", {"scratch"}, {"scratch"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("scratch", 999);  // undone by abort
                    ctx.abort();
                  }));
  const ObjectId child_obj = cluster.create_object(flaky, NodeId(0));

  const ClassId parent_cls = cluster.define_class(
      ClassBuilder("Parent", cfg.page_size)
          .attribute("done", 8)
          .method("parent", {"done"}, {"done"},
                  [child_obj](MethodContext& ctx) {
                    // Child aborts; parent observes the failure, continues
                    // and commits its own work (Moss: failing sub-txns do
                    // not doom the family).
                    EXPECT_FALSE(ctx.invoke(child_obj, "failing_child"));
                    ctx.set<std::int64_t>("done", 1);
                  }));
  const ObjectId parent_obj = cluster.create_object(parent_cls, NodeId(1));

  const TxnResult r = cluster.run_root(parent_obj, "parent", NodeId(2));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(parent_obj, "done"), 1);
  EXPECT_EQ(cluster.peek<std::int64_t>(child_obj, "scratch"), 0);
}

TEST_P(RuntimeSmokeTest, MutualRecursionIsPrecluded) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.max_retries = 3;
  Cluster cluster(cfg);
  // parent's method writes the object and then invokes another method on
  // the SAME object: the child needs a lock its ancestor still holds, which
  // the runtime must preclude (Section 3.4).
  const ClassId cls = cluster.define_class(
      ClassBuilder("SelfCaller", cfg.page_size)
          .attribute("x", 8)
          .method("inner", {"x"}, {"x"},
                  [](MethodContext& ctx) { ctx.set<std::int64_t>("x", 2); })
          .method("outer", {"x"}, {"x"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("x", 1);
            ctx.invoke(ObjectId(0), "inner");  // same object
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_EQ(obj.value(), 0u);

  EXPECT_THROW(cluster.run_root(obj, "outer", NodeId(1)),
               RecursiveInvocationError);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RuntimeSmokeTest,
                         ::testing::Values(ProtocolKind::kCotec,
                                           ProtocolKind::kOtec,
                                           ProtocolKind::kLotec,
                                           ProtocolKind::kRc,
                                           ProtocolKind::kLotecDsd),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           std::erase(name, '-');
                           return name;
                         });

}  // namespace
}  // namespace lotec
