// Calibration guard: the frozen figure scenarios must keep producing
// ratios in (a widened version of) the paper's reported bands.  If a
// runtime change shifts traffic accounting, this fails before the
// benchmark outputs silently drift away from the reproduction targets.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

struct Band {
  const char* name;
  WorkloadSpec spec;
  double otec_saving_min, otec_saving_max;    // vs COTEC bytes
  double lotec_saving_min, lotec_saving_max;  // vs OTEC bytes
};

TEST(CalibrationTest, HighContentionScenariosStayInPaperBands) {
  const std::vector<Band> bands = {
      {"fig2", scenarios::medium_high_contention(), 0.18, 0.35, 0.03, 0.15},
      {"fig3", scenarios::large_high_contention(), 0.18, 0.32, 0.06, 0.20},
  };
  for (const Band& band : bands) {
    const Workload workload(band.spec);
    const auto results = run_protocol_suite(
        workload,
        {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec});
    const double cotec = static_cast<double>(results[0].total.bytes);
    const double otec = static_cast<double>(results[1].total.bytes);
    const double lotec = static_cast<double>(results[2].total.bytes);
    const double otec_saving = 1.0 - otec / cotec;
    const double lotec_saving = 1.0 - lotec / otec;
    EXPECT_GE(otec_saving, band.otec_saving_min) << band.name;
    EXPECT_LE(otec_saving, band.otec_saving_max) << band.name;
    EXPECT_GE(lotec_saving, band.lotec_saving_min) << band.name;
    EXPECT_LE(lotec_saving, band.lotec_saving_max) << band.name;
    // Full commit: calibration assumes no retry-exhausted families.
    EXPECT_EQ(results[0].committed, band.spec.num_transactions) << band.name;
  }
}

TEST(CalibrationTest, MessageCountInversionHolds) {
  // "LOTEC sends many more messages (albeit small ones)": more messages
  // than OTEC, smaller average size.
  const Workload workload(scenarios::large_high_contention());
  const auto results = run_protocol_suite(
      workload, {ProtocolKind::kOtec, ProtocolKind::kLotec});
  const auto& otec = results[0].total;
  const auto& lotec = results[1].total;
  EXPECT_GT(lotec.messages, otec.messages);
  EXPECT_LT(lotec.bytes / lotec.messages, otec.bytes / otec.messages);
}

TEST(CalibrationTest, GigabitCrossoverHolds) {
  // Fig 8's crossover: at 1 Gbps LOTEC loses under 100us software cost and
  // wins under 1us, on the figure's subject object (max COTEC traffic).
  const Workload workload(scenarios::large_high_contention());
  const auto results = run_protocol_suite(
      workload, {ProtocolKind::kCotec, ProtocolKind::kOtec,
                 ProtocolKind::kLotec});
  ObjectId subject = results[0].object_ids.front();
  for (const ObjectId id : results[0].object_ids)
    if (results[0].object_traffic(id).bytes >
        results[0].object_traffic(subject).bytes)
      subject = id;
  const auto time_at = [&](const ScenarioResult& r, double sw_us) {
    const NetworkCostModel model(NetworkCostModel::kEthernet1Gbps, sw_us);
    const TrafficCounter c = r.object_traffic(subject);
    return model.total_time_us(c.messages, c.bytes);
  };
  EXPECT_GT(time_at(results[2], 100.0), time_at(results[1], 100.0))
      << "LOTEC should lose to OTEC under heavyweight messaging at 1 Gbps";
  EXPECT_LT(time_at(results[2], 1.0), time_at(results[1], 1.0))
      << "LOTEC should win with aggressive low-latency messaging";
}

}  // namespace
}  // namespace lotec
