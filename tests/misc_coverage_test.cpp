// Odds and ends: failure paths and small behaviours not covered by the
// subsystem suites.
#include <gtest/gtest.h>

#include "persist/snapshot.hpp"
#include "runtime/cluster.hpp"

namespace lotec {
namespace {

TEST(MiscCoverageTest, SendToAllSkipsFailedTargetsAndReportsThem) {
  Transport t(3);
  t.set_node_failed(NodeId(2), true);
  const std::vector<NodeId> skipped =
      t.send_to_all({MessageKind::kUpdatePush, NodeId(0), NodeId(0),
                     ObjectId(1), 10},
                    {NodeId(1), NodeId(2)});
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], NodeId(2));
  // The multicast was charged for the subset it reached.
  EXPECT_EQ(t.stats().total().messages, 1u);
}

TEST(MiscCoverageTest, SendToAllThrowsWhenSourceIsDown) {
  Transport t(3);
  t.set_node_failed(NodeId(0), true);
  try {
    (void)t.send_to_all({MessageKind::kUpdatePush, NodeId(0), NodeId(0),
                         ObjectId(1), 10},
                        {NodeId(1), NodeId(2)});
    FAIL() << "expected NodeUnreachable";
  } catch (const NodeUnreachable& e) {
    EXPECT_EQ(e.src(), NodeId(0));
    EXPECT_EQ(e.node(), NodeId(0));
  }
}

TEST(MiscCoverageTest, NodePinningIsRefCounted) {
  Node node{NodeId(0)};
  const ObjectId obj(3);
  EXPECT_FALSE(node.pinned(obj));
  node.pin(obj);
  node.pin(obj);
  node.unpin(obj);
  EXPECT_TRUE(node.pinned(obj));
  node.unpin(obj);
  EXPECT_FALSE(node.pinned(obj));
  EXPECT_THROW(node.unpin(obj), UsageError);
}

TEST(MiscCoverageTest, NodeLruOrdersByRecency) {
  Node node{NodeId(0)};
  node.touch(ObjectId(1));
  node.touch(ObjectId(2));
  node.touch(ObjectId(1));  // 1 most recent again
  ASSERT_EQ(node.lru.size(), 2u);
  EXPECT_EQ(node.lru.front(), ObjectId(1));
  EXPECT_EQ(node.lru.back(), ObjectId(2));
  node.forget(ObjectId(2));
  EXPECT_EQ(node.lru.size(), 1u);
  node.forget(ObjectId(2));  // idempotent
}

TEST(MiscCoverageTest, PageDeltaChainArithmetic) {
  Page page;
  page.version = 10;
  page.history.push_back({9, {{0, 16}}});           // 9 -> 10
  page.history.push_back({7, {{32, 8}, {64, 8}}});  // 7 -> 9 (skips 8)
  // Up to date: zero bytes.
  EXPECT_EQ(page.delta_chain_bytes(10), 0u);
  EXPECT_EQ(page.delta_chain_bytes(12), 0u);
  // One behind: newest delta only (8 hdr + 16 payload + 8 range desc).
  EXPECT_EQ(page.delta_chain_bytes(9), 8u + 16 + 8);
  // Three behind via the chain 7 -> 9 -> 10.
  EXPECT_EQ(page.delta_chain_bytes(7), (8u + 24) + (8u + 16 + 2 * 8));
  // Version 8 falls inside a chain hole: full page required.
  EXPECT_EQ(page.delta_chain_bytes(8), std::nullopt);
  // Before the history starts: full page.
  EXPECT_EQ(page.delta_chain_bytes(3), std::nullopt);
}

TEST(MiscCoverageTest, PeekAndRestorePageValidateGeometry) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", 64).attribute("v", 8).method(
          "bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  std::vector<std::byte> wrong(32);
  EXPECT_THROW(cluster.peek_page(obj, PageIndex(0), wrong), UsageError);
  EXPECT_THROW(cluster.restore_page(obj, PageIndex(0), wrong), UsageError);
  std::vector<std::byte> right(64);
  EXPECT_NO_THROW(cluster.peek_page(obj, PageIndex(0), right));
}

TEST(MiscCoverageTest, RetryExhaustionIsReportedNotFatal) {
  // Force exhaustion: max_retries=1 with an unavoidable repeat deadlock is
  // hard to stage deterministically, so instead verify the plumbing: a
  // victimized family that cannot retry reports kRetryExhausted.  Two
  // families in opposing lock order with max_retries=1 — the victim's
  // single attempt is spent.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  cfg.seed = 4;
  cfg.max_retries = 1;  // a victim cannot retry at all
  Cluster cluster(cfg);
  const ClassId cell = cluster.define_class(
      ClassBuilder("Cell", 64).attribute("v", 8).method(
          "bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId a = cluster.create_object(cell, NodeId(0));
  const ObjectId b = cluster.create_object(cell, NodeId(1));
  struct Plan {
    ObjectId first, second;
  };
  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", 64).attribute("pad", 8).method(
          "run", {}, {}, [](MethodContext& ctx) {
            const auto* plan = static_cast<const Plan*>(ctx.user_data());
            ASSERT_TRUE(ctx.invoke(plan->first, "bump"));
            ASSERT_TRUE(ctx.invoke(plan->second, "bump"));
          }));
  const ObjectId d0 = cluster.create_object(driver, NodeId(0));
  const ObjectId d1 = cluster.create_object(driver, NodeId(1));
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    RootRequest fwd{d0, cluster.method_id(d0, "run"), NodeId(0), {}, nullptr};
    fwd.user_data = std::make_shared<Plan>(Plan{a, b});
    RootRequest rev{d1, cluster.method_id(d1, "run"), NodeId(1), {}, nullptr};
    rev.user_data = std::make_shared<Plan>(Plan{b, a});
    reqs.push_back(std::move(fwd));
    reqs.push_back(std::move(rev));
  }
  const auto results = cluster.execute(std::move(reqs));
  std::size_t committed = 0, exhausted = 0;
  for (const auto& r : results) {
    if (r.committed) {
      ++committed;
    } else {
      EXPECT_EQ(r.reason, AbortReason::kRetryExhausted);
      ++exhausted;
    }
  }
  EXPECT_GT(committed, 0u);
  // Counters must balance and state must reflect exactly the commits.
  EXPECT_EQ(committed + exhausted, results.size());
  EXPECT_EQ(cluster.peek<std::int64_t>(a, "v"),
            static_cast<std::int64_t>(committed));
  EXPECT_EQ(cluster.peek<std::int64_t>(b, "v"),
            static_cast<std::int64_t>(committed));
}

TEST(MiscCoverageTest, SnapshotStatsCountDataBytes) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", 64)
          .attribute("a", 64)
          .attribute("b", 64)
          .method("m", {}, {"a"},
                  [](MethodContext& ctx) { ctx.set<std::int64_t>("a", 1); }));
  (void)cluster.create_object(cls);
  (void)cluster.create_object(cls);
  const std::string path = ::testing::TempDir() + "misc_snap.bin";
  const SnapshotStats stats = save_snapshot(cluster, path);
  EXPECT_EQ(stats.objects, 2u);
  EXPECT_EQ(stats.pages, 4u);
  EXPECT_EQ(stats.data_bytes, 4u * 64);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lotec
