// Inter-family lock caching (callback locking): zero-message re-acquires at
// the caching site, callback revocation on remote conflict, read-entry
// downgrade, LRU capacity eviction, inertness when disabled, and
// deterministic chaos runs with the cache on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"
#include "sim/validate.hpp"

namespace lotec {
namespace {

ClassId define_counter(Cluster& cluster, std::uint32_t page_size) {
  return cluster.define_class(
      ClassBuilder("Counter", page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  })
          .method("read", {"value"}, {},
                  [](MethodContext& ctx) { ctx.get<std::int64_t>("value"); }));
}

/// `count` requests for `method` on `obj`, all at `site`.
std::vector<RootRequest> batch_at(Cluster& cluster, ObjectId obj,
                                  const char* method, int count, NodeId site) {
  const MethodId m = cluster.method_id(obj, method);
  std::vector<RootRequest> reqs;
  for (int i = 0; i < count; ++i) reqs.push_back({obj, m, site, {}, nullptr});
  return reqs;
}

/// A site that is neither the object's directory home nor its creator, so
/// every acquire and page fetch genuinely crosses the wire.
NodeId remote_site(Cluster& cluster, ObjectId obj, NodeId creator) {
  const NodeId home = cluster.gdo().home_of(obj);
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    if (NodeId(n) != home && NodeId(n) != creator) return NodeId(n);
  throw UsageError("remote_site: cluster too small");
}

ClusterConfig cache_config(bool lock_cache) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  // Families run strictly one after another: an idle release window between
  // them is what gives retention something to do (retain_release refuses
  // while anyone is queued).
  cfg.max_active_families = 1;
  cfg.lock_cache = lock_cache;
  return cfg;
}

TEST(LockCacheTest, ReacquireAtSameSiteSendsNoLockMessages) {
  std::uint64_t acquire_msgs[2];
  std::uint64_t lock_msgs_total[2];
  for (const bool enabled : {false, true}) {
    Cluster cluster(cache_config(enabled));
    const ClassId cls = define_counter(cluster, 256);
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    const NodeId site = remote_site(cluster, obj, NodeId(0));

    const auto results =
        cluster.execute(batch_at(cluster, obj, "increment", 3, site));
    for (const TxnResult& r : results) ASSERT_TRUE(r.committed);
    EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 3);
    EXPECT_TRUE(validate_quiescent(cluster).empty());

    EXPECT_EQ(cluster.gdo().cache_regrants(), enabled ? 2u : 0u);
    EXPECT_EQ(cluster.gdo().cache_callbacks(), 0u);
    acquire_msgs[enabled] =
        cluster.stats().by_kind(MessageKind::kLockAcquireRequest).messages;
    lock_msgs_total[enabled] =
        acquire_msgs[enabled] +
        cluster.stats().by_kind(MessageKind::kLockAcquireGrant).messages +
        cluster.stats().by_kind(MessageKind::kLockReleaseRequest).messages;
  }
  // With the cache, families 2 and 3 acquire without touching the network:
  // one global acquire total instead of three.
  EXPECT_EQ(acquire_msgs[true], 1u);
  EXPECT_EQ(acquire_msgs[false], 3u);
  EXPECT_LT(lock_msgs_total[true], lock_msgs_total[false]);
}

TEST(LockCacheTest, ConflictingRemoteAcquireTriggersCallbackRound) {
  Cluster cluster(cache_config(true));
  const ClassId cls = define_counter(cluster, 256);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  const NodeId a = remote_site(cluster, obj, NodeId(0));
  const NodeId home = cluster.gdo().home_of(obj);
  NodeId b;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    if (NodeId(n) != home && NodeId(n) != a) b = NodeId(n);

  // Two writers at `a` (second is a zero-message re-grant), then a writer at
  // `b`: the directory must call `a`'s cached write lock back, flushing the
  // deferred report, before granting `b`.
  auto reqs = batch_at(cluster, obj, "increment", 2, a);
  auto more = batch_at(cluster, obj, "increment", 1, b);
  reqs.insert(reqs.end(), more.begin(), more.end());
  const auto results = cluster.execute(std::move(reqs));
  for (const TxnResult& r : results) ASSERT_TRUE(r.committed);

  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 3);
  EXPECT_EQ(cluster.gdo().cache_regrants(), 1u);
  EXPECT_EQ(cluster.gdo().cache_callbacks(), 1u);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kLockCallback).messages, 1u);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kCallbackReply).messages, 1u);
  // The callback extracted `a`'s entry; nothing of `obj` is cached at `a`.
  EXPECT_FALSE(cluster.node(a).lock_cache.contains(obj));
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

TEST(LockCacheTest, ReadEntriesShareAndAreDiscardedForFree) {
  Cluster cluster(cache_config(true));
  const ClassId cls = define_counter(cluster, 256);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  const NodeId a = remote_site(cluster, obj, NodeId(0));
  const NodeId home = cluster.gdo().home_of(obj);
  NodeId b;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    if (NodeId(n) != home && NodeId(n) != a) b = NodeId(n);

  // Readers at two sites: read markers are compatible, so both sites end up
  // caching a read entry with no callback traffic.
  auto reqs = batch_at(cluster, obj, "read", 2, a);
  auto more = batch_at(cluster, obj, "read", 2, b);
  reqs.insert(reqs.end(), more.begin(), more.end());
  const auto results = cluster.execute(std::move(reqs));
  for (const TxnResult& r : results) ASSERT_TRUE(r.committed);

  EXPECT_EQ(cluster.gdo().cache_regrants(), 2u);  // one re-grant per site
  // Read-mode entries are clean: the end-of-batch drain discards them
  // unilaterally, with no flush message charged.
  EXPECT_EQ(cluster.gdo().cache_flushes(), 0u);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

TEST(LockCacheTest, CapacityEvictionFlushesLeastRecentlyUsedEntry) {
  ClusterConfig cfg = cache_config(true);
  cfg.lock_cache_capacity = 1;
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, 256);
  const ObjectId o1 = cluster.create_object(cls, NodeId(0));
  const ObjectId o2 = cluster.create_object(cls, NodeId(0));
  const NodeId site = remote_site(cluster, o1, NodeId(0));

  // Alternating objects at one site with room for a single cached lock:
  // every switch evicts (and flushes) the previous object's entry, so the
  // second visit to o1 cannot be a re-grant.
  auto reqs = batch_at(cluster, o1, "increment", 1, site);
  for (const ObjectId obj : {o2, o1, o2}) {
    auto more = batch_at(cluster, obj, "increment", 1, site);
    reqs.insert(reqs.end(), more.begin(), more.end());
  }
  const auto results = cluster.execute(std::move(reqs));
  for (const TxnResult& r : results) ASSERT_TRUE(r.committed);

  EXPECT_EQ(cluster.peek<std::int64_t>(o1, "value"), 2);
  EXPECT_EQ(cluster.peek<std::int64_t>(o2, "value"), 2);
  EXPECT_EQ(cluster.gdo().cache_regrants(), 0u);
  // Three capacity evictions plus the end-of-batch drain of the survivor.
  EXPECT_EQ(cluster.gdo().cache_flushes(), 4u);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

TEST(LockCacheTest, DisabledKnobsAreInertOnTheWire) {
  // An unbounded cache config (capacity 0) with the cache itself off must
  // behave bit-identically to the plain config: same messages, same bytes,
  // same order.  A *bounded* capacity with the cache off is no longer
  // silently ignored — ExperimentOptions::validate() rejects it up front.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 60;
  const Workload workload(spec);

  ExperimentOptions base;
  base.nodes = 8;
  base.record_trace = true;
  ExperimentOptions knobs = base;
  knobs.lock_cache = false;
  knobs.lock_cache_capacity = 0;

  const ScenarioResult a = run_scenario(workload, ProtocolKind::kLotec, base);
  const ScenarioResult b = run_scenario(workload, ProtocolKind::kLotec, knobs);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_EQ(b.counter("cache.regrants"), 0u);
  EXPECT_EQ(b.counter("cache.callbacks"), 0u);
  EXPECT_EQ(b.counter("cache.flushes"), 0u);

  // The previously inert combination is now a configuration error.
  ExperimentOptions bad = base;
  bad.lock_cache_capacity = 4;
  EXPECT_THROW(bad.validate(), UsageError);
}

TEST(LockCacheTest, HotSiteWorkloadCutsLockTraffic) {
  // All families pinned to their object's home site: the cache converts
  // repeat acquires into local re-grants and total lock traffic drops.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 80;
  const Workload workload(spec);

  ExperimentOptions options;
  options.nodes = 8;
  options.max_active_families = 1;
  options.site_locality = 1.0;

  const ScenarioResult off =
      run_scenario(workload, ProtocolKind::kLotec, options);
  options.lock_cache = true;
  const ScenarioResult on =
      run_scenario(workload, ProtocolKind::kLotec, options);

  EXPECT_EQ(on.committed, off.committed);
  EXPECT_EQ(on.aborted, off.aborted);
  EXPECT_GT(on.counter("cache.regrants"), 0u);
  EXPECT_LT(on.counter("net.lock_messages"), off.counter("net.lock_messages"));
}

TEST(LockCacheTest, EvictionRacingCallbackRoundLeavesDirectoryConsistent) {
  // The evict-while-callback-pending window: capacity eviction extracts the
  // entry locally (take_flush) *before* its flush reaches the directory.  If
  // the flush never lands, the directory still holds the cached marker and a
  // later conflicting acquire runs a full kLockCallback round against a site
  // whose entry is already gone — revoke() must come back empty-handed and
  // the directory must still erase the marker and grant.  Releases are
  // modeled reliable (cannot be dropped), so the flush is killed the only
  // way a reliable send can die: its destination — o1's directory home —
  // crashes on that exact message, and the replicated failover directory
  // keeps serving the stale marker.
  ClusterConfig cfg = cache_config(true);
  cfg.lock_cache_capacity = 1;
  cfg.gdo.replicate = true;
  FaultEvent crash;  // fell the flush's destination on the flush itself
  crash.action = FaultAction::kCrashNode;
  crash.on_kind = MessageKind::kLockReleaseRequest;
  crash.nth = 1;
  crash.target = FaultTarget::kMessageDst;
  cfg.fault.events.push_back(crash);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, 256);
  const ObjectId o1 = cluster.create_object(cls, NodeId(0));
  const ObjectId o2 = cluster.create_object(cls, NodeId(0));
  const NodeId a = remote_site(cluster, o1, NodeId(0));
  const NodeId home = cluster.gdo().home_of(o1);
  NodeId b;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    if (NodeId(n) != home && NodeId(n) != a) b = NodeId(n);

  // f1 caches o1's write lock at `a`; f2 (o2 at `a`) overflows the 1-entry
  // cache and evicts o1 — the flush is the batch's first kLockReleaseRequest
  // and the fault schedule kills it, stranding o1's marker at the directory;
  // f3 (o1 at `b`) then collides with that stale marker.
  auto reqs = batch_at(cluster, o1, "increment", 1, a);
  auto more = batch_at(cluster, o2, "increment", 1, a);
  reqs.insert(reqs.end(), more.begin(), more.end());
  more = batch_at(cluster, o1, "increment", 1, b);
  reqs.insert(reqs.end(), more.begin(), more.end());
  const auto results = cluster.execute(std::move(reqs));
  for (const TxnResult& r : results) ASSERT_TRUE(r.committed);

  // Exactly the flush died (its destination crashed on it), and it was o1's.
  ASSERT_GE(cluster.fault_engine()->trace().size(), 1u);
  const FaultRecord& killed = cluster.fault_engine()->trace()[0];
  EXPECT_EQ(killed.action, FaultAction::kCrashNode);
  EXPECT_EQ(killed.kind, MessageKind::kLockReleaseRequest);
  EXPECT_EQ(killed.object, o1);
  EXPECT_EQ(killed.node, home);

  // The collision ran a real callback round (wire messages and all) against
  // the evicted entry, and the empty reply still cleared the marker.
  EXPECT_EQ(cluster.gdo().cache_callbacks(), 1u);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kLockCallback).messages, 1u);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kCallbackReply).messages, 1u);
  EXPECT_FALSE(cluster.node(a).lock_cache.contains(o1));

  // Writeback semantics: o1's update at `a` was committed under the cached
  // lock and its flush died, so `b` built on the last *published* version —
  // the deferred increment is lost, the directory never serves a torn state.
  EXPECT_EQ(cluster.peek<std::int64_t>(o1, "value"), 1);
  EXPECT_EQ(cluster.peek<std::int64_t>(o2, "value"), 1);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

/// One seeded chaos run with the lock cache on: crash + restart the hot
/// object's directory home and the caching site mid-workload.
struct CacheChaosOutcome {
  std::vector<TraceEvent> messages;
  std::int64_t value = 0;
  std::uint64_t crashes = 0;
  std::size_t committed = 0;

  friend bool operator==(const CacheChaosOutcome&,
                         const CacheChaosOutcome&) = default;
};

CacheChaosOutcome run_cache_chaos(std::uint64_t seed, NodeId home,
                                  NodeId holder) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.seed = seed;
  cfg.max_active_families = 1;
  cfg.lock_cache = true;
  cfg.gdo.replicate = true;
  cfg.fault = fault_presets::chaos(home, holder, seed,
                                   /*first_crash_tick=*/40, /*window=*/60,
                                   /*drop=*/0.02);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  const ObjectId obj = cluster.create_object(cls, holder);
  cluster.stats().enable_trace(1 << 20);

  // Alternate the writer between two sites: every handoff is a callback
  // round plus a flush, which keeps messages (and the fault clock) moving.
  const MethodId m = cluster.method_id(obj, "increment");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 32; ++i)
    reqs.push_back({obj, m,
                    i % 2 ? NodeId((holder.value() + 1) % 4) : holder,
                    {},
                    nullptr});
  const auto results = cluster.execute(std::move(reqs));

  CacheChaosOutcome out;
  out.messages = cluster.stats().trace();
  out.value = cluster.peek<std::int64_t>(obj, "value");
  out.crashes = cluster.fault_engine()->stats().crashes;
  for (const TxnResult& r : results) out.committed += r.committed ? 1 : 0;
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
  return out;
}

TEST(LockCacheTest, ChaosWithCacheIsDeterministicAndRecovers) {
  ClusterConfig probe_cfg;
  probe_cfg.nodes = 4;
  probe_cfg.page_size = 256;
  Cluster probe(probe_cfg);
  const ClassId probe_cls = define_counter(probe, probe_cfg.page_size);
  const ObjectId probe_obj = probe.create_object(probe_cls, NodeId(0));
  const NodeId home = probe.gdo().home_of(probe_obj);
  const NodeId holder((home.value() + 2) % 4);

  const CacheChaosOutcome a = run_cache_chaos(11, home, holder);
  const CacheChaosOutcome b = run_cache_chaos(11, home, holder);
  EXPECT_EQ(a, b);  // same seed: byte-identical run, cache included

  EXPECT_GE(a.crashes, 1u);
  // Crashing the caching site may lose updates committed under a cached
  // lock whose flush never happened (writeback semantics); the directory
  // stays consistent, so the surviving value never exceeds the commits.
  EXPECT_LE(a.value, static_cast<std::int64_t>(a.committed));
  EXPECT_GT(a.value, 0);
}

}  // namespace
}  // namespace lotec
