// GdoService: Algorithm 4.2 (GlobalLockAcquisition) and 4.4
// (GlobalLockRelease) semantics — grants, read sharing, FIFO queues,
// upgrades, wakeups, page-map maintenance, partitioning, replication
// failover, message accounting.
#include <gtest/gtest.h>

#include "gdo/gdo_service.hpp"

namespace lotec {
namespace {

TxnId txn(std::uint64_t family, std::uint32_t serial = 0) {
  return TxnId{FamilyId(family), serial};
}

class GdoServiceTest : public ::testing::Test {
 protected:
  GdoServiceTest() : transport_(4), gdo_(transport_) {
    gdo_.register_object(obj_, 4, NodeId(0));
  }

  Transport transport_;
  GdoService gdo_;
  ObjectId obj_{ObjectId(1)};
};

TEST_F(GdoServiceTest, FreshWriteGrantCarriesPageMap) {
  const AcquireResult r =
      gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  EXPECT_EQ(r.status, AcquireStatus::kGranted);
  EXPECT_FALSE(r.upgrade);
  ASSERT_EQ(r.page_map.num_pages(), 4u);
  EXPECT_EQ(r.page_map.at(PageIndex(0)).node, NodeId(0));  // creator owns all
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.state, GdoLockState::kWrite);
  EXPECT_TRUE(e.held_by(FamilyId(1)));
}

TEST_F(GdoServiceTest, ConflictingWriteQueues) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  const AcquireResult r =
      gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kWrite);
  EXPECT_EQ(r.status, AcquireStatus::kQueued);
  const GdoEntry e = gdo_.snapshot(obj_);
  ASSERT_EQ(e.waiters.size(), 1u);
  EXPECT_EQ(e.waiters[0].family, FamilyId(2));
}

TEST_F(GdoServiceTest, ReadersShare) {
  EXPECT_EQ(gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kRead).status,
            AcquireStatus::kGranted);
  EXPECT_EQ(gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kRead).status,
            AcquireStatus::kGranted);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.state, GdoLockState::kRead);
  EXPECT_EQ(e.read_count, 2u);
  EXPECT_EQ(e.holders.size(), 2u);
}

TEST_F(GdoServiceTest, PaperSemanticsReadBypassesQueuedWriter) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kWrite);  // queued
  // Algorithm 4.2: "held for Read and this is a Read request -> grant".
  EXPECT_EQ(gdo_.acquire(obj_, txn(3), NodeId(3), LockMode::kRead).status,
            AcquireStatus::kGranted);
}

TEST_F(GdoServiceTest, FairReadersQueueBehindWriter) {
  Transport transport(4);
  GdoService gdo(transport, GdoConfig{.fair_readers = true});
  gdo.register_object(obj_, 4, NodeId(0));
  (void)gdo.acquire(obj_, txn(1), NodeId(1), LockMode::kRead);
  (void)gdo.acquire(obj_, txn(2), NodeId(2), LockMode::kWrite);
  EXPECT_EQ(gdo.acquire(obj_, txn(3), NodeId(3), LockMode::kRead).status,
            AcquireStatus::kQueued);
}

TEST_F(GdoServiceTest, ReleaseGrantsNextWaiterFifo) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(3), NodeId(3), LockMode::kWrite);

  const ReleaseResult r =
      gdo_.release_family(obj_, FamilyId(1), NodeId(1), nullptr);
  ASSERT_EQ(r.wakeups.size(), 1u);
  EXPECT_EQ(r.wakeups[0].family, FamilyId(2));  // FIFO
  EXPECT_EQ(r.wakeups[0].mode, LockMode::kWrite);
  EXPECT_EQ(r.wakeups[0].page_map.num_pages(), 4u);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_TRUE(e.held_by(FamilyId(2)));
  EXPECT_FALSE(e.held_by(FamilyId(1)));
  ASSERT_EQ(e.waiters.size(), 1u);
  EXPECT_EQ(e.waiters[0].family, FamilyId(3));
}

TEST_F(GdoServiceTest, ReleaseGrantsReadBatch) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(3), NodeId(3), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(4), NodeId(1), LockMode::kWrite);

  const ReleaseResult r =
      gdo_.release_family(obj_, FamilyId(1), NodeId(1), nullptr);
  ASSERT_EQ(r.wakeups.size(), 2u);  // both readers, not the writer
  EXPECT_EQ(r.wakeups[0].family, FamilyId(2));
  EXPECT_EQ(r.wakeups[1].family, FamilyId(3));
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.read_count, 2u);
  EXPECT_EQ(e.waiters.size(), 1u);  // writer still queued
}

TEST_F(GdoServiceTest, SingleGrantModePopsOneFamily) {
  Transport transport(4);
  GdoService gdo(transport, GdoConfig{.grant_read_batches = false});
  gdo.register_object(obj_, 4, NodeId(0));
  (void)gdo.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo.acquire(obj_, txn(2), NodeId(2), LockMode::kRead);
  (void)gdo.acquire(obj_, txn(3), NodeId(3), LockMode::kRead);
  const ReleaseResult r =
      gdo.release_family(obj_, FamilyId(1), NodeId(1), nullptr);
  EXPECT_EQ(r.wakeups.size(), 1u);  // paper's algorithm pops one list
}

TEST_F(GdoServiceTest, UpgradeGrantedWhenSoleReader) {
  (void)gdo_.acquire(obj_, txn(1, 0), NodeId(1), LockMode::kRead);
  const AcquireResult r =
      gdo_.acquire(obj_, txn(1, 1), NodeId(1), LockMode::kWrite);
  EXPECT_EQ(r.status, AcquireStatus::kGranted);
  EXPECT_TRUE(r.upgrade);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.state, GdoLockState::kWrite);
  EXPECT_EQ(e.read_count, 0u);
}

TEST_F(GdoServiceTest, UpgradeQueuesAheadOfOrdinaryWaiters) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(3), NodeId(3), LockMode::kWrite);  // ordinary
  const AcquireResult up =
      gdo_.acquire(obj_, txn(2, 1), NodeId(2), LockMode::kWrite);
  EXPECT_EQ(up.status, AcquireStatus::kQueued);
  const GdoEntry e = gdo_.snapshot(obj_);
  ASSERT_EQ(e.waiters.size(), 2u);
  EXPECT_TRUE(e.waiters[0].upgrade);
  EXPECT_EQ(e.waiters[0].family, FamilyId(2));

  // When the other reader releases, the upgrade wins.
  const ReleaseResult r =
      gdo_.release_family(obj_, FamilyId(1), NodeId(1), nullptr);
  ASSERT_EQ(r.wakeups.size(), 1u);
  EXPECT_TRUE(r.wakeups[0].upgrade);
  EXPECT_EQ(r.wakeups[0].family, FamilyId(2));
  EXPECT_EQ(gdo_.snapshot(obj_).state, GdoLockState::kWrite);
}

TEST_F(GdoServiceTest, RedundantAcquireByHolderIsAnError) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  EXPECT_THROW(gdo_.acquire(obj_, txn(1, 1), NodeId(1), LockMode::kWrite),
               UsageError);
  EXPECT_THROW(gdo_.acquire(obj_, txn(1, 1), NodeId(1), LockMode::kRead),
               UsageError);
}

TEST_F(GdoServiceTest, DirtyReleaseStampsVersionAndMovesOwnership) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  ReleaseInfo info;
  info.dirty = PageSet(4);
  info.dirty.insert(PageIndex(1));
  info.dirty.insert(PageIndex(3));
  const ReleaseResult r =
      gdo_.release_family(obj_, FamilyId(1), NodeId(2), &info);
  EXPECT_EQ(r.stamped_version, 1u);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.page_map.at(PageIndex(1)), (PageLocation{NodeId(2), 1}));
  EXPECT_EQ(e.page_map.at(PageIndex(3)), (PageLocation{NodeId(2), 1}));
  EXPECT_EQ(e.page_map.at(PageIndex(0)), (PageLocation{NodeId(0), 0}));
  EXPECT_EQ(e.state, GdoLockState::kFree);
}

TEST_F(GdoServiceTest, CurrentReportMovesOwnerWithoutVersionBump) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  ReleaseInfo info;
  info.dirty = PageSet(4);
  info.dirty.insert(PageIndex(0));
  info.current = {{PageIndex(1), 0}};  // clean copy at version 0
  (void)gdo_.release_family(obj_, FamilyId(1), NodeId(2), &info);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.page_map.at(PageIndex(1)), (PageLocation{NodeId(2), 0}));
  // A stale current-report must NOT displace a newer version.
  (void)gdo_.acquire(obj_, txn(2), NodeId(3), LockMode::kWrite);
  ReleaseInfo stale;
  stale.dirty = PageSet(4);
  stale.current = {{PageIndex(0), 0}};  // older than the stamped v1
  (void)gdo_.release_family(obj_, FamilyId(2), NodeId(3), &stale);
  EXPECT_EQ(gdo_.snapshot(obj_).page_map.at(PageIndex(0)).version, 1u);
  EXPECT_EQ(gdo_.snapshot(obj_).page_map.at(PageIndex(0)).node, NodeId(2));
}

TEST_F(GdoServiceTest, VersionCounterMonotonic) {
  for (std::uint64_t f = 1; f <= 3; ++f) {
    (void)gdo_.acquire(obj_, txn(f), NodeId(1), LockMode::kWrite);
    ReleaseInfo info;
    info.dirty = PageSet(4);
    info.dirty.insert(PageIndex(0));
    const ReleaseResult r =
        gdo_.release_family(obj_, FamilyId(f), NodeId(1), &info);
    EXPECT_EQ(r.stamped_version, f);
  }
}

TEST_F(GdoServiceTest, AbortReleaseLeavesPageMapUntouched) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  (void)gdo_.release_family(obj_, FamilyId(1), NodeId(2), nullptr);
  const GdoEntry e = gdo_.snapshot(obj_);
  EXPECT_EQ(e.page_map.at(PageIndex(0)), (PageLocation{NodeId(0), 0}));
  EXPECT_EQ(e.version_counter, 0u);
}

TEST_F(GdoServiceTest, CancelWaiterUnblocksQueue) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kRead);
  (void)gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kWrite);  // queued
  (void)gdo_.acquire(obj_, txn(3), NodeId(3), LockMode::kRead);   // granted (paper)
  // Cancel the queued writer: nothing new grantable (readers already in).
  auto wakeups = gdo_.cancel_waiter(obj_, FamilyId(2));
  EXPECT_TRUE(wakeups.empty());
  EXPECT_EQ(gdo_.snapshot(obj_).waiters.size(), 0u);

  // Now queue a writer then a reader under fair semantics... instead verify
  // cancel of a mid-queue family preserves FIFO for the rest.
  (void)gdo_.acquire(obj_, txn(4), NodeId(1), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(5), NodeId(2), LockMode::kWrite);
  (void)gdo_.cancel_waiter(obj_, FamilyId(4));
  (void)gdo_.release_family(obj_, FamilyId(1), NodeId(1), nullptr);
  const auto r = gdo_.release_family(obj_, FamilyId(3), NodeId(3), nullptr);
  ASSERT_EQ(r.wakeups.size(), 1u);
  EXPECT_EQ(r.wakeups[0].family, FamilyId(5));
}

TEST_F(GdoServiceTest, ReleaseByNonHolderThrows) {
  EXPECT_THROW(gdo_.release_family(obj_, FamilyId(9), NodeId(1), nullptr),
               UsageError);
}

TEST_F(GdoServiceTest, ReleaseBatchCoversMultipleObjects) {
  gdo_.register_object(ObjectId(2), 2, NodeId(1));
  (void)gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  (void)gdo_.acquire(ObjectId(2), txn(1, 1), NodeId(2), LockMode::kWrite);
  std::vector<ReleaseItem> items;
  ReleaseInfo a;
  a.dirty = PageSet(4);
  a.dirty.insert(PageIndex(0));
  items.push_back({obj_, a});
  items.push_back({ObjectId(2), std::nullopt});
  const BatchReleaseResult r =
      gdo_.release_batch(FamilyId(1), NodeId(2), items);
  EXPECT_EQ(r.stamped_versions.at(obj_), 1u);
  EXPECT_EQ(r.stamped_versions.at(ObjectId(2)), 0u);
  EXPECT_EQ(gdo_.snapshot(obj_).state, GdoLockState::kFree);
  EXPECT_EQ(gdo_.snapshot(ObjectId(2)).state, GdoLockState::kFree);
}

TEST_F(GdoServiceTest, CachingSitesTrackGrantees) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(2), LockMode::kWrite);
  const auto sites = gdo_.caching_sites(obj_);
  EXPECT_EQ(sites.size(), 2u);  // creator + grantee
  gdo_.note_caching_site(obj_, NodeId(3));
  EXPECT_EQ(gdo_.caching_sites(obj_).size(), 3u);
}

TEST_F(GdoServiceTest, MessageAccountingChargesRemoteOnly) {
  // Requester co-located with the home partition pays nothing.
  const NodeId home = gdo_.home_of(obj_);
  (void)gdo_.acquire(obj_, txn(1), home, LockMode::kWrite);
  EXPECT_EQ(transport_.stats().total().messages, 0u);
  (void)gdo_.release_family(obj_, FamilyId(1), home, nullptr);
  EXPECT_EQ(transport_.stats().total().messages, 0u);

  // A remote requester pays request + grant.
  const NodeId remote((home.value() + 1) % 4);
  (void)gdo_.acquire(obj_, txn(2), remote, LockMode::kWrite);
  EXPECT_EQ(transport_.stats().total().messages, 2u);
  EXPECT_EQ(transport_.stats()
                .by_kind(MessageKind::kLockAcquireGrant)
                .messages,
            1u);
  // Grant payload includes the page map.
  EXPECT_GE(transport_.stats().by_kind(MessageKind::kLockAcquireGrant).bytes,
            wire::kHeaderBytes + wire::kLockRecordBytes +
                4 * wire::kPageMapEntryBytes);
}

TEST_F(GdoServiceTest, PartitioningSpreadsObjects) {
  Transport transport(4);
  GdoService gdo(transport);
  for (std::uint64_t i = 0; i < 64; ++i)
    gdo.register_object(ObjectId(100 + i), 1, NodeId(0));
  std::size_t with_objects = 0;
  for (std::uint32_t n = 0; n < 4; ++n)
    with_objects += gdo.objects_homed_at(NodeId(n)).empty() ? 0 : 1;
  EXPECT_EQ(with_objects, 4u);  // all partitions used
  EXPECT_EQ(gdo.num_objects(), 64u);
}

TEST_F(GdoServiceTest, UnknownObjectThrows) {
  EXPECT_THROW(gdo_.acquire(ObjectId(77), txn(1), NodeId(0), LockMode::kRead),
               UsageError);
  EXPECT_THROW(gdo_.lookup_page_map(ObjectId(77), NodeId(0)), UsageError);
  EXPECT_THROW(gdo_.register_object(obj_, 4, NodeId(0)), UsageError);
  EXPECT_THROW(gdo_.register_object(ObjectId(78), 0, NodeId(0)), UsageError);
}

TEST(GdoReplicationTest, FailoverServesFromMirror) {
  Transport transport(4);
  GdoService gdo(transport, GdoConfig{.replicate = true});
  const ObjectId obj(5);
  gdo.register_object(obj, 3, NodeId(0));
  const NodeId home = gdo.home_of(obj);
  // Survivor nodes distinct from the home we are about to kill.
  const NodeId a((home.value() + 2) % 4);
  const NodeId b((home.value() + 3) % 4);
  (void)gdo.acquire(obj, txn(1), a, LockMode::kWrite);
  ReleaseInfo info;
  info.dirty = PageSet(3);
  info.dirty.insert(PageIndex(2));
  (void)gdo.release_family(obj, FamilyId(1), a, &info);

  // Kill the home; lookups and acquisitions keep working via the mirror,
  // and the replicated page map reflects the pre-failure release.
  transport.set_node_failed(home, true);
  const PageMap map = gdo.lookup_page_map(obj, a);
  EXPECT_EQ(map.at(PageIndex(2)), (PageLocation{a, 1}));
  EXPECT_EQ(gdo.acquire(obj, txn(2), b, LockMode::kWrite).status,
            AcquireStatus::kGranted);
  (void)gdo.release_family(obj, FamilyId(2), b, nullptr);
}

TEST(GdoReplicationTest, WithoutReplicationFailureIsFatal) {
  Transport transport(4);
  GdoService gdo(transport);  // replicate = false
  const ObjectId obj(5);
  gdo.register_object(obj, 3, NodeId(0));
  transport.set_node_failed(gdo.home_of(obj), true);
  EXPECT_THROW(gdo.lookup_page_map(obj, NodeId(2)), NodeUnreachable);
}

TEST(GdoReplicationTest, ReplicationTrafficIsCharged) {
  Transport transport(4);
  GdoService gdo(transport, GdoConfig{.replicate = true});
  const ObjectId obj(5);
  gdo.register_object(obj, 3, NodeId(0));
  EXPECT_GE(transport.stats().by_kind(MessageKind::kGdoReplicaSync).messages,
            1u);
  EXPECT_EQ(transport.stats().by_kind(MessageKind::kGdoReplicaSync).messages,
            transport.stats().by_kind(MessageKind::kGdoReplicaAck).messages);
}

TEST(GdoGrantDeliveryTest, HookFiresUnderReleaseAndCancel) {
  Transport transport(4);
  GdoService gdo(transport);
  const ObjectId obj(5);
  gdo.register_object(obj, 2, NodeId(0));
  std::vector<FamilyId> delivered;
  gdo.set_grant_delivery(
      [&](const Grant& g) { delivered.push_back(g.family); });
  (void)gdo.acquire(obj, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo.acquire(obj, txn(2), NodeId(2), LockMode::kWrite);
  (void)gdo.acquire(obj, txn(3), NodeId(3), LockMode::kWrite);
  (void)gdo.release_family(obj, FamilyId(1), NodeId(1), nullptr);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], FamilyId(2));
  (void)gdo.cancel_waiter(obj, FamilyId(3));
  EXPECT_EQ(delivered.size(), 1u);  // cancelled family gets nothing
}

}  // namespace
}  // namespace lotec
