// FaultEngine unit behaviour: schedule validation, deterministic message
// chaos, targeted drops, partitions, two-phase crash semantics, and the
// GDO's lock-lease reclamation driven through the FaultHooks seam.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>

#include "fault/fault_engine.hpp"
#include "runtime/cluster.hpp"

namespace lotec {
namespace {

TxnId txn(std::uint64_t family, std::uint32_t serial = 0) {
  return TxnId{FamilyId(family), serial};
}

WireMessage fetch_req(NodeId src, NodeId dst) {
  return {MessageKind::kPageFetchRequest, src, dst, ObjectId(1), 32};
}

class FaultEngineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 4;

  FaultEngineTest() : transport_(kNodes), gdo_(transport_, {}) {
    for (std::size_t i = 0; i < kNodes; ++i)
      nodes_.push_back(
          std::make_unique<Node>(NodeId(static_cast<std::uint32_t>(i))));
  }

  FaultEngine& engine(const FaultConfig& cfg) {
    engine_ = std::make_unique<FaultEngine>(cfg, transport_, gdo_, nodes_,
                                            /*page_size=*/256);
    transport_.set_fault_hooks(engine_.get());
    return *engine_;
  }

  Transport transport_;
  GdoService gdo_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<FaultEngine> engine_;
};

// --- schedule validation ----------------------------------------------------

TEST_F(FaultEngineTest, RejectsOutOfRangeProbability) {
  FaultConfig cfg;
  cfg.drop_probability = 1.5;
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsZeroLeaseTerm) {
  FaultConfig cfg;
  cfg.install_hooks = true;
  cfg.lease_term_ticks = 0;
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsEventWithBothTriggers) {
  FaultConfig cfg = fault_presets::crash_restart(NodeId(1), 5, 10);
  cfg.events[0].on_kind = MessageKind::kPageFetchRequest;
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsEventWithNoTrigger) {
  FaultConfig cfg;
  FaultEvent ev;
  ev.action = FaultAction::kCrashNode;
  ev.node = NodeId(1);
  cfg.events = {ev};
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsCrashTargetOutOfRange) {
  FaultConfig cfg = fault_presets::crash_restart(NodeId(9), 5, 10);
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsDropOfReliableKind) {
  FaultConfig cfg;
  FaultEvent ev;
  ev.action = FaultAction::kDropMessage;
  ev.on_kind = MessageKind::kLockAcquireGrant;  // grants are reliable
  cfg.events = {ev};
  EXPECT_THROW(engine(cfg), UsageError);
}

TEST_F(FaultEngineTest, RejectsPartitionWithEmptyGroup) {
  FaultConfig cfg = fault_presets::partition_window({NodeId(0)}, {}, 5, 10);
  EXPECT_THROW(engine(cfg), UsageError);
}

// --- targeted events --------------------------------------------------------

TEST_F(FaultEngineTest, TargetedDropKillsExactlyTheNthMessage) {
  FaultConfig cfg;
  FaultEvent ev;
  ev.action = FaultAction::kDropMessage;
  ev.on_kind = MessageKind::kPageFetchRequest;
  ev.nth = 2;
  cfg.events = {ev};
  engine(cfg);

  transport_.send(fetch_req(NodeId(0), NodeId(1)));  // 1st: passes
  EXPECT_THROW(transport_.send(fetch_req(NodeId(0), NodeId(1))),
               MessageDropped);                      // 2nd: killed
  transport_.send(fetch_req(NodeId(0), NodeId(1)));  // one-shot: 3rd passes
  EXPECT_EQ(engine_->stats().dropped, 1u);
  EXPECT_EQ(transport_.stats().total().messages, 2u);
}

TEST_F(FaultEngineTest, TickTriggeredCrashFlipsReachabilityImmediately) {
  engine(fault_presets::crash_restart(NodeId(2), /*crash=*/2, /*restart=*/99));

  transport_.send(fetch_req(NodeId(0), NodeId(1)));  // tick 1
  EXPECT_TRUE(transport_.reachable(NodeId(2)));
  // Tick 2 fires the crash; the triggering message's destination is node 1,
  // which stays up, so the message itself is delivered.
  transport_.send(fetch_req(NodeId(0), NodeId(1)));
  EXPECT_FALSE(transport_.reachable(NodeId(2)));
  EXPECT_EQ(engine_->crash_count(NodeId(2)), 1u);
  EXPECT_EQ(engine_->crash_count(NodeId(0)), 0u);
  // Sends to the dead node now fail with both endpoints identified.
  try {
    transport_.send(fetch_req(NodeId(0), NodeId(2)));
    FAIL() << "expected NodeUnreachable";
  } catch (const NodeUnreachable& e) {
    EXPECT_EQ(e.src(), NodeId(0));
    EXPECT_EQ(e.node(), NodeId(2));
  }
}

TEST_F(FaultEngineTest, CrashWipesStoreOnlyAtApplyPending) {
  {
    Node& victim = *nodes_[2];
    std::lock_guard<std::mutex> lock(victim.store_mu);
    victim.store.create(ObjectId(7), 2, 256, /*materialize=*/true);
    victim.touch(ObjectId(7));
  }
  engine(fault_presets::crash_restart(NodeId(2), 1, 99));
  EXPECT_THROW(transport_.send(fetch_req(NodeId(0), NodeId(2))),
               NodeUnreachable);  // tick 1: crash fires, then dst is down
  {
    // Two-phase: unreachable already, memory still intact until the runtime
    // reaches a checkpoint.
    Node& victim = *nodes_[2];
    std::lock_guard<std::mutex> lock(victim.store_mu);
    EXPECT_NE(victim.store.find(ObjectId(7)), nullptr);
  }
  engine_->apply_pending();
  Node& victim = *nodes_[2];
  std::lock_guard<std::mutex> lock(victim.store_mu);
  EXPECT_EQ(victim.store.find(ObjectId(7)), nullptr);
  EXPECT_TRUE(victim.lru.empty());
}

TEST_F(FaultEngineTest, PartitionCutsOnlyInterruptibleTrafficBothWays) {
  engine(fault_presets::partition_window({NodeId(0)}, {NodeId(2)},
                                         /*start=*/1, /*heal=*/99));
  transport_.send(fetch_req(NodeId(1), NodeId(2)));  // tick 1: cut starts
  EXPECT_THROW(transport_.send(fetch_req(NodeId(0), NodeId(2))),
               NodeUnreachable);
  EXPECT_THROW(transport_.send(fetch_req(NodeId(2), NodeId(0))),
               NodeUnreachable);
  // Unrelated links are unaffected.
  transport_.send(fetch_req(NodeId(1), NodeId(2)));
  // Reliable traffic (a grant) crosses the cut: the substrate retries it.
  transport_.send({MessageKind::kLockAcquireGrant, NodeId(0), NodeId(2),
                   ObjectId(1), 48});
  EXPECT_EQ(engine_->stats().partition_drops, 2u);
}

TEST_F(FaultEngineTest, PartitionHealsAtScheduledTick) {
  engine(fault_presets::partition_window({NodeId(0)}, {NodeId(2)},
                                         /*start=*/1, /*heal=*/3));
  transport_.send(fetch_req(NodeId(1), NodeId(3)));  // tick 1: cut
  EXPECT_THROW(transport_.send(fetch_req(NodeId(0), NodeId(2))),
               NodeUnreachable);  // tick 2
  transport_.send(fetch_req(NodeId(1), NodeId(3)));  // tick 3: heal
  transport_.send(fetch_req(NodeId(0), NodeId(2)));  // tick 4: flows again
}

// --- background chaos -------------------------------------------------------

TEST_F(FaultEngineTest, ChaosSkipsLocalAndReliableMessages) {
  engine(fault_presets::message_chaos(/*seed=*/7, /*drop=*/1.0, 0.0, 0.0));
  // Local (src == dst) and reliable kinds never drop even at p = 1.
  transport_.send({MessageKind::kPageFetchRequest, NodeId(1), NodeId(1),
                   ObjectId(1), 32});
  transport_.send({MessageKind::kLockGrantWakeup, NodeId(0), NodeId(1),
                   ObjectId(1), 48});
  EXPECT_THROW(transport_.send(fetch_req(NodeId(0), NodeId(1))),
               MessageDropped);
  EXPECT_EQ(engine_->stats().dropped, 1u);
}

TEST_F(FaultEngineTest, DuplicationRecordsAnExtraCopy) {
  engine(fault_presets::message_chaos(/*seed=*/7, 0.0, /*dup=*/1.0, 0.0));
  transport_.send(fetch_req(NodeId(0), NodeId(1)));
  EXPECT_EQ(transport_.stats().total().messages, 2u);
  EXPECT_EQ(engine_->stats().duplicated, 1u);
}

TEST_F(FaultEngineTest, DelayAdvancesTheLogicalClock) {
  FaultConfig cfg =
      fault_presets::message_chaos(/*seed=*/7, 0.0, 0.0, /*delay=*/1.0);
  cfg.delay_ticks = 5;
  engine(cfg);
  transport_.send(fetch_req(NodeId(0), NodeId(1)));
  EXPECT_EQ(engine_->now(), 6u);  // 1 message tick + 5 delay ticks
  EXPECT_EQ(engine_->stats().delayed, 1u);
  EXPECT_EQ(engine_->stats().delay_ticks_total, 5u);
}

TEST_F(FaultEngineTest, SameSeedSameChaosDecisions) {
  const auto run = [this](std::uint64_t seed) {
    transport_.stats().reset();
    FaultEngine eng(fault_presets::message_chaos(seed, 0.3, 0.2, 0.2),
                    transport_, gdo_, nodes_, 256);
    transport_.set_fault_hooks(&eng);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      try {
        transport_.send(fetch_req(NodeId(i % 3), NodeId(3)));
        outcomes.push_back(true);
      } catch (const MessageDropped&) {
        outcomes.push_back(false);
      }
    }
    transport_.set_fault_hooks(nullptr);
    const FaultStats s = eng.stats();
    return std::tuple(outcomes, s.dropped, s.duplicated, s.delayed,
                      eng.now());
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(std::get<0>(a), std::get<0>(c));  // different seed, different run
  EXPECT_GT(std::get<1>(a), 0u);
  EXPECT_GT(std::get<2>(a), 0u);
  EXPECT_GT(std::get<3>(a), 0u);
}

// --- lock leases ------------------------------------------------------------

/// The two nodes of a 4-node cluster that are neither the object's (hashed)
/// directory home nor its mirror — safe to crash without losing the entry.
std::pair<NodeId, NodeId> bystanders(const GdoService& gdo, ObjectId obj) {
  const NodeId home = gdo.home_of(obj);
  const NodeId mirror = gdo.mirror_of(obj);
  std::vector<NodeId> out;
  for (std::uint32_t n = 0; n < 4; ++n) {
    const NodeId cand(n);
    if (cand != home && cand != mirror) out.push_back(cand);
  }
  return {out.at(0), out.at(1)};
}

TEST_F(FaultEngineTest, OrphanedLockReclaimedOnlyAfterLeaseExpiry) {
  FaultConfig cfg;
  cfg.install_hooks = true;
  cfg.lease_term_ticks = 10;
  engine(cfg);
  const ObjectId obj(1);
  gdo_.register_object(obj, 2, NodeId(0));
  // Crash a node that is neither the entry's home nor its mirror, so the
  // directory entry itself survives and only the lock holder dies.
  const auto [victim, spare] = bystanders(gdo_, obj);
  const NodeId home = gdo_.home_of(obj);

  // Family 1 (at the victim) takes the write lock; its lease starts "now".
  ASSERT_EQ(gdo_.acquire(obj, txn(1), victim, LockMode::kWrite).status,
            AcquireStatus::kGranted);

  // The victim crashes and restarts: family 1's holder record is now from a
  // dead incarnation (live crash epoch 1 > recorded epoch 0).
  engine(fault_presets::crash_restart(victim, 1, 2));
  transport_.send(fetch_req(home, spare));  // tick 1: crash fires
  transport_.send(fetch_req(home, spare));  // tick 2: restart queued
  engine_->apply_pending();

  // Lease still running: a conflicting request queues behind the orphan.
  EXPECT_EQ(gdo_.acquire(obj, txn(2), spare, LockMode::kWrite).status,
            AcquireStatus::kQueued);

  // Burn ticks past the lease, then reap on the next acquisition attempt.
  for (int i = 0; i < 20; ++i) transport_.send(fetch_req(home, spare));
  std::vector<Grant> granted;
  gdo_.set_grant_delivery([&](const Grant& g) { granted.push_back(g); });
  EXPECT_EQ(gdo_.acquire(obj, txn(3), home, LockMode::kWrite).status,
            AcquireStatus::kQueued);
  gdo_.set_grant_delivery(nullptr);

  // The orphan was reclaimed and the FIFO head (family 2) woken.
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0].family, FamilyId(2));
  EXPECT_EQ(gdo_.locks_reclaimed(), 1u);
  const GdoEntry e = gdo_.snapshot(obj);
  EXPECT_FALSE(e.held_by(FamilyId(1)));
  EXPECT_TRUE(e.held_by(FamilyId(2)));
}

TEST_F(FaultEngineTest, DeadIncarnationWaiterPurgedBeforeGrant) {
  FaultConfig cfg;
  cfg.install_hooks = true;
  engine(cfg);
  const ObjectId obj(1);
  gdo_.register_object(obj, 2, NodeId(0));
  const auto [victim, spare] = bystanders(gdo_, obj);
  const NodeId home = gdo_.home_of(obj);

  ASSERT_EQ(gdo_.acquire(obj, txn(1), spare, LockMode::kWrite).status,
            AcquireStatus::kGranted);
  // Family 2 at the victim queues, then the victim crashes: its wakeup
  // could never be consumed.
  ASSERT_EQ(gdo_.acquire(obj, txn(2), victim, LockMode::kWrite).status,
            AcquireStatus::kQueued);
  engine(fault_presets::crash_restart(victim, 1, 2));
  transport_.send(fetch_req(home, spare));  // crash
  transport_.send(fetch_req(home, spare));  // restart queued
  engine_->apply_pending();

  // Family 1 releases: the dead waiter must be purged, not granted.
  std::vector<Grant> granted;
  gdo_.set_grant_delivery([&](const Grant& g) { granted.push_back(g); });
  (void)gdo_.release_family(obj, FamilyId(1), spare, nullptr);
  gdo_.set_grant_delivery(nullptr);
  EXPECT_TRUE(granted.empty());
  EXPECT_EQ(gdo_.waiters_purged(), 1u);
  const GdoEntry e = gdo_.snapshot(obj);
  EXPECT_EQ(e.state, GdoLockState::kFree);
  EXPECT_TRUE(e.waiters.empty());
}

// --- cluster construction guards -------------------------------------------

TEST(FaultConfigGuards, FaultInjectionRequiresDeterministicScheduler) {
  ClusterConfig cfg;
  cfg.scheduler = SchedulerMode::kConcurrent;
  cfg.fault = fault_presets::message_chaos(1, 0.01, 0.0, 0.0);
  EXPECT_THROW(Cluster cluster(cfg), UsageError);
}

TEST(FaultConfigGuards, NodeFaultsRequireGdoReplication) {
  ClusterConfig cfg;
  cfg.fault = fault_presets::crash_restart(NodeId(1), 10, 20);
  EXPECT_THROW(Cluster cluster(cfg), UsageError);
  cfg.gdo.replicate = true;
  EXPECT_NO_THROW(Cluster cluster(cfg));
}

}  // namespace
}  // namespace lotec
