// PageSet: set algebra, bounds checking, and property sweeps over universe
// sizes (including word-boundary sizes 63/64/65).
#include <gtest/gtest.h>

#include "common/page_set.hpp"
#include "common/rng.hpp"

namespace lotec {
namespace {

PageIndex P(std::uint32_t i) { return PageIndex(i); }

TEST(PageSetTest, StartsEmpty) {
  PageSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.universe_size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_FALSE(s.contains(P(i)));
}

TEST(PageSetTest, InsertEraseContains) {
  PageSet s(10);
  s.insert(P(3));
  s.insert(P(9));
  EXPECT_TRUE(s.contains(P(3)));
  EXPECT_TRUE(s.contains(P(9)));
  EXPECT_FALSE(s.contains(P(4)));
  EXPECT_EQ(s.count(), 2u);
  s.erase(P(3));
  EXPECT_FALSE(s.contains(P(3)));
  EXPECT_EQ(s.count(), 1u);
  s.erase(P(3));  // idempotent
  EXPECT_EQ(s.count(), 1u);
}

TEST(PageSetTest, FullHasEverything) {
  const PageSet s = PageSet::full(7);
  EXPECT_EQ(s.count(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) EXPECT_TRUE(s.contains(P(i)));
}

TEST(PageSetTest, OutOfRangeThrows) {
  PageSet s(4);
  EXPECT_THROW(s.insert(P(4)), UsageError);
  EXPECT_THROW((void)s.contains(P(100)), UsageError);
  EXPECT_THROW(s.insert(PageIndex{}), UsageError);  // invalid index
}

TEST(PageSetTest, MismatchedUniversesThrow) {
  PageSet a(4), b(5);
  EXPECT_THROW(a |= b, UsageError);
  EXPECT_THROW(a &= b, UsageError);
  EXPECT_THROW(a -= b, UsageError);
  EXPECT_THROW((void)a.subset_of(b), UsageError);
}

TEST(PageSetTest, SetAlgebra) {
  PageSet a(8), b(8);
  a.insert(P(0));
  a.insert(P(1));
  a.insert(P(2));
  b.insert(P(2));
  b.insert(P(3));

  const PageSet u = a | b;
  EXPECT_EQ(u.count(), 4u);
  const PageSet i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.contains(P(2)));
  const PageSet d = a - b;
  EXPECT_EQ(d.count(), 2u);
  EXPECT_TRUE(d.contains(P(0)));
  EXPECT_FALSE(d.contains(P(2)));
}

TEST(PageSetTest, SubsetAndIntersects) {
  PageSet a(8), b(8);
  a.insert(P(1));
  b.insert(P(1));
  b.insert(P(5));
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  a.clear();
  EXPECT_TRUE(a.subset_of(b));   // empty set is subset of everything
  EXPECT_FALSE(a.intersects(b));
}

TEST(PageSetTest, ToVectorAscending) {
  PageSet s(70);
  s.insert(P(65));
  s.insert(P(0));
  s.insert(P(63));
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].value(), 0u);
  EXPECT_EQ(v[1].value(), 63u);
  EXPECT_EQ(v[2].value(), 65u);
  EXPECT_EQ(s.to_string(), "{0,63,65}");
}

TEST(PageSetTest, EqualityAcrossWordBoundary) {
  PageSet a(65), b(65);
  a.insert(P(64));
  EXPECT_NE(a, b);
  b.insert(P(64));
  EXPECT_EQ(a, b);
}

class PageSetPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PageSetPropertyTest, AlgebraIdentities) {
  const std::size_t n = GetParam();
  Rng rng(n * 977 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    PageSet a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) a.insert(P(static_cast<std::uint32_t>(i)));
      if (rng.chance(0.4)) b.insert(P(static_cast<std::uint32_t>(i)));
    }
    // |A U B| + |A & B| == |A| + |B|
    EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
    // A - B == A & (U - B)
    EXPECT_EQ(a - b, a & (PageSet::full(n) - b));
    // De Morgan over the finite universe.
    const PageSet u = PageSet::full(n);
    EXPECT_EQ(u - (a | b), (u - a) & (u - b));
    EXPECT_EQ(u - (a & b), (u - a) | (u - b));
    // Difference then union restores supersets.
    EXPECT_TRUE(((a - b) | (a & b)) == a);
    // subset_of consistency.
    EXPECT_TRUE((a & b).subset_of(a));
    EXPECT_TRUE(a.subset_of(a | b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageSetPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 1000));

}  // namespace
}  // namespace lotec
