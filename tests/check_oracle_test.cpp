// Unit tests for the invariant oracles (src/check/oracles): each oracle is
// fed a synthetic event stream — one clean, one violating — and must flag
// exactly the violating one.
#include <gtest/gtest.h>

#include "check/oracles.hpp"

using namespace lotec;
using namespace lotec::check;

namespace {

constexpr std::uint32_t kRoot = 0;
constexpr std::uint32_t kNoSerial = CheckSink::kNoSerial;

FamilyId fam(std::uint64_t v) { return FamilyId{v}; }
ObjectId obj(std::uint64_t v) { return ObjectId{v}; }
PageIndex pg(std::uint32_t v) { return PageIndex{v}; }
NodeId node(std::uint32_t v) { return NodeId{v}; }

// --- serializability -------------------------------------------------------

TEST(SerializabilityOracleTest, DisjointFamiliesAreClean) {
  SerializabilityOracle o;
  o.on_attempt_start(fam(1));
  o.on_page_access(fam(1), kRoot, obj(1), pg(0), 0, true);
  o.on_commit_stamp(fam(1), obj(1), pg(0), 1, node(0));
  o.on_family_outcome(fam(1), true);
  o.on_attempt_start(fam(2));
  o.on_page_access(fam(2), kRoot, obj(2), pg(0), 0, true);
  o.on_commit_stamp(fam(2), obj(2), pg(0), 1, node(1));
  o.on_family_outcome(fam(2), true);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(SerializabilityOracleTest, RwCycleIsFlagged) {
  // f1 reads o1 at the version f2 later overwrites (rw: f1 -> f2) and f2
  // reads o2 at the version f1 later overwrites (rw: f2 -> f1): a classic
  // write-skew cycle, not conflict-serializable.
  SerializabilityOracle o;
  o.on_attempt_start(fam(1));
  o.on_attempt_start(fam(2));
  o.on_page_access(fam(1), kRoot, obj(1), pg(0), 0, false);
  o.on_page_access(fam(2), kRoot, obj(2), pg(0), 0, false);
  o.on_commit_stamp(fam(1), obj(2), pg(0), 1, node(0));
  o.on_commit_stamp(fam(2), obj(1), pg(0), 1, node(1));
  o.on_family_outcome(fam(1), true);
  o.on_family_outcome(fam(2), true);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "serializability");
  EXPECT_NE(v->detail.find("cycle"), std::string::npos) << v->detail;
}

TEST(SerializabilityOracleTest, UncommittedFamiliesGenerateNoEdges) {
  SerializabilityOracle o;
  o.on_attempt_start(fam(1));
  o.on_attempt_start(fam(2));
  o.on_page_access(fam(1), kRoot, obj(1), pg(0), 0, false);
  o.on_page_access(fam(2), kRoot, obj(2), pg(0), 0, false);
  o.on_commit_stamp(fam(1), obj(2), pg(0), 1, node(0));
  o.on_commit_stamp(fam(2), obj(1), pg(0), 1, node(1));
  o.on_family_outcome(fam(1), true);
  o.on_family_outcome(fam(2), false);  // f2 aborted: no cycle remains
  EXPECT_FALSE(o.finish().has_value());
}

TEST(SerializabilityOracleTest, SubtreeAbortErasesItsAccesses) {
  // The cycle-making access of f1 came from a sub-transaction whose subtree
  // then aborted: its accesses are rolled back and must not count.
  SerializabilityOracle o;
  o.on_attempt_start(fam(1));
  o.on_attempt_start(fam(2));
  o.on_page_access(fam(1), /*serial=*/1, obj(1), pg(0), 0, false);
  o.on_subtree_abort(fam(1), /*first=*/1, /*end=*/2);
  o.on_page_access(fam(2), kRoot, obj(2), pg(0), 0, false);
  o.on_commit_stamp(fam(1), obj(2), pg(0), 1, node(0));
  o.on_commit_stamp(fam(2), obj(1), pg(0), 1, node(1));
  o.on_family_outcome(fam(1), true);
  o.on_family_outcome(fam(2), true);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(SerializabilityOracleTest, RetryDropsEarlierAttemptAccesses) {
  SerializabilityOracle o;
  o.on_attempt_start(fam(1));
  o.on_page_access(fam(1), kRoot, obj(1), pg(0), 0, false);
  o.on_attempt_start(fam(1));  // deadlock restart: attempt 1 rolled back
  o.on_page_access(fam(1), kRoot, obj(2), pg(0), 0, false);
  o.on_commit_stamp(fam(1), obj(2), pg(0), 1, node(0));
  o.on_family_outcome(fam(1), true);
  o.on_attempt_start(fam(2));
  o.on_commit_stamp(fam(2), obj(1), pg(0), 1, node(1));
  o.on_family_outcome(fam(2), true);
  // With attempt 1's o1 access dropped, f1 only conflicts with f2 via its
  // own o2 stamp ordering — no cycle.
  EXPECT_FALSE(o.finish().has_value());
}

// --- lock discipline -------------------------------------------------------

TEST(LockDisciplineOracleTest, RetentionLifecycleIsClean) {
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  o.on_txn_begin(fam(1), 1, kRoot, obj(2));
  o.on_global_grant(fam(1), 1, obj(2), LockMode::kWrite, false, false, false);
  o.on_pre_commit(fam(1), 1, kRoot);  // rule 3: retained by the root
  o.on_lock_release(fam(1), obj(2), CheckReleaseReason::kRootCommit);
  o.on_family_outcome(fam(1), true);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(LockDisciplineOracleTest, MidFamilyReleaseWhileRetainedIsFlagged) {
  // Exactly the break_retention mutation: the sub-transaction pre-commits
  // (lock retained by its parent) and the lock is then released mid-family.
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  o.on_txn_begin(fam(1), 1, kRoot, obj(2));
  o.on_global_grant(fam(1), 1, obj(2), LockMode::kWrite, false, false, false);
  o.on_pre_commit(fam(1), 1, kRoot);
  o.on_lock_release(fam(1), obj(2), CheckReleaseReason::kSubtreeAbort);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "lock-discipline");
  EXPECT_NE(v->detail.find("Moss retention broken"), std::string::npos)
      << v->detail;
}

TEST(LockDisciplineOracleTest, SubtreeAbortReleaseIsClean) {
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  o.on_txn_begin(fam(1), 1, kRoot, obj(2));
  o.on_global_grant(fam(1), 1, obj(2), LockMode::kWrite, false, false, false);
  o.on_subtree_abort(fam(1), 1, 2);  // rule 4: t1's locks may now go
  o.on_lock_release(fam(1), obj(2), CheckReleaseReason::kSubtreeAbort);
  o.on_family_outcome(fam(1), false);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(LockDisciplineOracleTest, MidFamilyReleaseWithoutAbortIsFlagged) {
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  // The lock was never tracked as held (already released), but no subtree
  // abort preceded the release either — rule 4 fired without its premise.
  o.on_lock_release(fam(1), obj(2), CheckReleaseReason::kSubtreeAbort);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->detail.find("without a preceding subtree abort"),
            std::string::npos)
      << v->detail;
}

TEST(LockDisciplineOracleTest, NonAncestorRetainerIsFlagged) {
  // Tree: root 0 -> {1 -> 2, 3}.  t2 pre-commits (retainer becomes t1);
  // granting the same lock to t3 violates rule 1: t1 is not t3's ancestor.
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  o.on_txn_begin(fam(1), 1, kRoot, obj(2));
  o.on_txn_begin(fam(1), 2, 1, obj(3));
  o.on_global_grant(fam(1), 2, obj(3), LockMode::kWrite, false, false, false);
  o.on_pre_commit(fam(1), 2, 1);
  o.on_txn_begin(fam(1), 3, kRoot, obj(3));
  o.on_global_grant(fam(1), 3, obj(3), LockMode::kWrite, false, false, false);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->detail.find("non-ancestor"), std::string::npos) << v->detail;
}

TEST(LockDisciplineOracleTest, AncestorRetainerIsClean) {
  // Same shape, but the second requester t3 is a DESCENDANT of the retainer.
  LockDisciplineOracle o;
  o.on_attempt_start(fam(1));
  o.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  o.on_txn_begin(fam(1), 1, kRoot, obj(2));
  o.on_global_grant(fam(1), 1, obj(3), LockMode::kWrite, false, false, false);
  o.on_pre_commit(fam(1), 1, kRoot);  // retainer: root
  o.on_txn_begin(fam(1), 2, kRoot, obj(3));
  o.on_global_grant(fam(1), 2, obj(3), LockMode::kWrite, false, false, false);
  o.on_lock_release(fam(1), obj(3), CheckReleaseReason::kRootCommit);
  o.on_family_outcome(fam(1), true);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(LockDisciplineOracleTest, CountsRecursionPreclusions) {
  LockDisciplineOracle o;
  EXPECT_EQ(o.recursion_preclusions(), 0u);
  o.on_recursion_precluded(fam(1), 2, obj(3));
  o.on_recursion_precluded(fam(1), 2, obj(3));
  EXPECT_EQ(o.recursion_preclusions(), 2u);
  EXPECT_FALSE(o.finish().has_value());
}

// --- page coherence --------------------------------------------------------

TEST(CoherenceOracleTest, FreshAccessIsClean) {
  CoherenceOracle o;
  o.on_commit_stamp(fam(1), obj(1), pg(0), 1, node(0));
  o.on_directory_stamp(obj(1), pg(0), 1, node(0), 1);
  o.on_page_access(fam(2), kRoot, obj(1), pg(0), 1, false);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(CoherenceOracleTest, StaleAccessIsFlagged) {
  CoherenceOracle o;
  o.on_commit_stamp(fam(1), obj(1), pg(0), 2, node(0));
  o.on_directory_stamp(obj(1), pg(0), 2, node(0), 1);
  o.on_page_access(fam(2), kRoot, obj(1), pg(0), 1, false);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "page-coherence");
  EXPECT_NE(v->detail.find("directory has published"), std::string::npos)
      << v->detail;
}

TEST(CoherenceOracleTest, PublicationWithoutCommitStampIsFlagged) {
  CoherenceOracle o;
  o.on_directory_stamp(obj(1), pg(0), 3, node(0), 1);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->detail.find("no site-side commit stamp"), std::string::npos)
      << v->detail;
}

TEST(CoherenceOracleTest, CrashDisablesStalenessChecks) {
  // Crash recovery legitimately republishes older state; the oracle must
  // stand down instead of false-positive on lease reclamation.
  CoherenceOracle o;
  o.on_commit_stamp(fam(1), obj(1), pg(0), 2, node(0));
  o.on_directory_stamp(obj(1), pg(0), 2, node(0), 1);
  o.on_node_crash(node(0), 1);
  o.on_page_access(fam(2), kRoot, obj(1), pg(0), 1, false);
  o.on_directory_stamp(obj(1), pg(0), 9, node(1), 2);
  EXPECT_FALSE(o.finish().has_value());
}

// --- cache epochs ----------------------------------------------------------

TEST(CacheEpochOracleTest, SharedReadCachingIsClean) {
  CacheEpochOracle o;
  o.on_cache_put(node(0), obj(1), LockMode::kRead);
  o.on_cache_put(node(1), obj(1), LockMode::kRead);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(CacheEpochOracleTest, ConflictingCachedLocksAreFlagged) {
  CacheEpochOracle o;
  o.on_cache_put(node(0), obj(1), LockMode::kWrite);
  o.on_cache_put(node(1), obj(1), LockMode::kRead);
  const auto v = o.finish();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "cache-epoch");
  EXPECT_NE(v->detail.find("conflicting modes"), std::string::npos)
      << v->detail;
}

TEST(CacheEpochOracleTest, DropClearsTheEntry) {
  CacheEpochOracle o;
  o.on_cache_put(node(0), obj(1), LockMode::kWrite);
  o.on_cache_drop(node(0), obj(1));
  o.on_cache_put(node(1), obj(1), LockMode::kWrite);
  EXPECT_FALSE(o.finish().has_value());
}

TEST(CacheEpochOracleTest, CrashWipesTheSite) {
  CacheEpochOracle o;
  o.on_cache_put(node(0), obj(1), LockMode::kWrite);
  o.on_node_crash(node(0), 1);
  o.on_cache_put(node(1), obj(1), LockMode::kWrite);
  EXPECT_FALSE(o.finish().has_value());
}

// --- fanout ----------------------------------------------------------------

TEST(FanoutSinkTest, CountsAndFingerprintsMessages) {
  FanoutSink a, b;
  WireMessage m{};
  m.kind = MessageKind::kLockAcquireRequest;
  m.src = node(0);
  m.dst = node(1);
  m.object = obj(3);
  m.payload_bytes = 64;
  a.on_transport_message(m);
  b.on_transport_message(m);
  EXPECT_EQ(a.messages(), 1u);
  EXPECT_EQ(a.message_hash(), b.message_hash());
  // Any field difference must change the fingerprint.
  m.payload_bytes = 65;
  b.on_transport_message(m);
  a.on_transport_message(m);
  EXPECT_EQ(a.message_hash(), b.message_hash());
  m.dst = node(0);
  a.on_transport_message(m);
  EXPECT_NE(a.message_hash(), b.message_hash());
}

TEST(FanoutSinkTest, ForwardsToAllSinksInOrder) {
  LockDisciplineOracle locks;
  SerializabilityOracle ser;
  FanoutSink fanout;
  fanout.add(&locks);
  fanout.add(&ser);
  fanout.on_attempt_start(fam(1));
  fanout.on_txn_begin(fam(1), kRoot, kNoSerial, obj(1));
  fanout.on_page_access(fam(1), kRoot, obj(1), pg(0), 0, true);
  fanout.on_recursion_precluded(fam(1), kRoot, obj(1));
  EXPECT_EQ(locks.recursion_preclusions(), 1u);
  fanout.on_family_outcome(fam(1), true);
  EXPECT_FALSE(locks.finish().has_value());
  EXPECT_FALSE(ser.finish().has_value());
}

}  // namespace
