// End-to-end wire transport tests: real lotec_worker OS processes joined by
// Unix-domain sockets, driven through the public Cluster API.
//
// The build pins the worker binary path in LOTEC_WORKER_BIN (a generator
// expression in tests/CMakeLists.txt), so these tests run from any ctest
// working directory without relying on the launcher's beside-the-binary
// search.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/validate.hpp"
#include "wire/wire_transport.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

ClusterConfig wire_config(std::size_t nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.wire.enabled = true;
#ifdef LOTEC_WORKER_BIN
  cfg.wire.worker_path = LOTEC_WORKER_BIN;
#endif
  return cfg;
}

const wire::WireTransport& wire_backend(Cluster& cluster) {
  const auto* wt =
      dynamic_cast<const wire::WireTransport*>(&cluster.observe().transport());
  EXPECT_NE(wt, nullptr) << "wire.enabled did not select WireTransport";
  return *wt;
}

TEST(WireTransportTest, ExecutesRealWorkAcrossProcesses) {
  const ClusterConfig cfg = wire_config(3);
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(
        cluster.run_root(obj, "increment", NodeId(i % 3)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 6);

  const wire::WireTransport& wt = wire_backend(cluster);
  EXPECT_TRUE(wt.ledger_complete());
  // Every remote frame the coordinator shipped was acknowledged as
  // delivered by exactly one worker (the batch-end crosscheck would have
  // thrown otherwise); the fleet really carried traffic.
  EXPECT_GT(cluster.stats().total().messages, 0u);
}

TEST(WireTransportTest, GoldenCountersMatchInProcess) {
  WorkloadSpec spec;
  spec.num_objects = 6;
  spec.num_transactions = 25;
  spec.contention_theta = 0.6;
  spec.max_depth = 2;
  spec.child_probability = 0.4;
  spec.seed = 0x517E;
  const Workload workload(spec);

  ClusterConfig inproc_cfg;
  inproc_cfg.nodes = 3;
  Cluster inproc(inproc_cfg);
  const auto inproc_results = inproc.execute(workload.instantiate(inproc));

  Cluster wired(wire_config(3));
  const auto wired_results = wired.execute(workload.instantiate(wired));

  ASSERT_EQ(inproc_results.size(), wired_results.size());
  for (std::size_t i = 0; i < inproc_results.size(); ++i)
    EXPECT_EQ(inproc_results[i].committed, wired_results[i].committed)
        << "txn " << i;

  // The golden-counter gate: accounted traffic must be bit-identical per
  // kind, not merely in total.
  EXPECT_EQ(inproc.stats().total().messages, wired.stats().total().messages);
  EXPECT_EQ(inproc.stats().total().bytes, wired.stats().total().bytes);
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(MessageKind::kNumKinds); ++k) {
    const auto kind = static_cast<MessageKind>(k);
    EXPECT_EQ(inproc.stats().by_kind(kind).messages,
              wired.stats().by_kind(kind).messages)
        << to_string(kind);
    EXPECT_EQ(inproc.stats().by_kind(kind).bytes,
              wired.stats().by_kind(kind).bytes)
        << to_string(kind);
  }
  EXPECT_TRUE(validate_quiescent(wired).empty());
}

TEST(WireTransportTest, GatheredLedgersAccountEveryShippedFrame) {
  WorkloadSpec spec;
  spec.num_objects = 5;
  spec.num_transactions = 15;
  spec.seed = 0xACC7;
  const Workload workload(spec);

  Cluster cluster(wire_config(3));
  (void)cluster.execute(workload.instantiate(cluster));

  const wire::WireTransport& wt = wire_backend(cluster);
  ASSERT_TRUE(wt.ledger_complete());
  wire::KindCounts shipped_total, delivered_total;
  for (std::size_t k = 0; k < wire::kNumWireKinds; ++k) {
    shipped_total.messages += wt.shipped()[k].messages;
    shipped_total.bytes += wt.shipped()[k].bytes;
  }
  const wire::KindCounts d = wt.gathered().delivered_total();
  delivered_total = d;
  EXPECT_GT(shipped_total.messages, 0u);
  EXPECT_EQ(shipped_total.messages, delivered_total.messages);
  EXPECT_EQ(shipped_total.bytes, delivered_total.bytes);
  // Retransmission dedup never fired on a clean local socket run.
  EXPECT_EQ(wt.gathered().duplicates_dropped, 0u);
}

TEST(WireTransportTest, ManualFailoverKillsTheRealWorker) {
  // The failover scenario from failover_test: marking the directory home
  // failed must now SIGKILL a real OS process, and the lock service keeps
  // running from the mirror.
  ClusterConfig cfg = wire_config(4);
  cfg.gdo.replicate = true;
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  const NodeId home = cluster.gdo().home_of(obj);
  const NodeId a((home.value() + 2) % 4);
  const NodeId b((home.value() + 3) % 4);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed);

  cluster.transport().set_node_failed(home, true);
  const wire::WireTransport& wt = wire_backend(cluster);
  EXPECT_EQ(wt.supervisor().kills(), 1u);
  EXPECT_FALSE(wt.supervisor().alive(home.value()));

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed)
        << "increment " << i << " failed during failover";

  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 10);
}

TEST(WireTransportTest, FaultEngineCrashRestartDrivesRealProcesses) {
  // The PR 1 recovery path end-to-end over the wire: a FaultEngine crash
  // event SIGKILLs a real worker process mid-batch, the restart event
  // respawns one on the same listen socket, and the batch recovers to an
  // honest, quiescent final state.
  ClusterConfig cfg = wire_config(4);
  cfg.gdo.replicate = true;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.on_kind = MessageKind::kLockAcquireRequest;
  crash.nth = 5;
  crash.node = NodeId(1);
  FaultEvent restart;
  restart.action = FaultAction::kRestartNode;
  restart.at_tick = 80;
  restart.node = NodeId(1);
  cfg.fault.events = {crash, restart};
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  const MethodId m = cluster.method_id(obj, "increment");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 12; ++i)
    reqs.push_back(
        {obj, m, NodeId(static_cast<std::uint32_t>(i % 4)), {}, nullptr});

  const auto results = cluster.execute(std::move(reqs));

  std::int64_t committed = 0, crashed_in_commit = 0;
  for (const TxnResult& r : results) {
    if (r.committed) ++committed;
    if (r.crashed_in_commit) ++crashed_in_commit;
  }
  EXPECT_GE(committed, 1);
  const std::int64_t value = cluster.peek<std::int64_t>(obj, "value");
  EXPECT_GE(value, committed);
  EXPECT_LE(value, committed + crashed_in_commit);
  EXPECT_TRUE(validate_quiescent(cluster).empty());

  // The crash and restart were real OS-process events, and a killed
  // incarnation's ledger is honestly reported as incomplete.
  EXPECT_EQ(cluster.fault_engine()->stats().crashes, 1u);
  const wire::WireTransport& wt = wire_backend(cluster);
  EXPECT_EQ(wt.supervisor().kills(), 1u);
  EXPECT_GE(wt.supervisor().respawns(), 1u);
  EXPECT_TRUE(wt.supervisor().alive(1));
  EXPECT_FALSE(wt.ledger_complete());
}

}  // namespace
}  // namespace lotec
