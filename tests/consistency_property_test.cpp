// Cross-protocol property tests — the central correctness claim of the
// reproduction: all four consistency protocols execute the same workload to
// the same final state (they differ only in what traffic they generate),
// and the byte ordering bytes(LOTEC) <= bytes(OTEC) <= bytes(COTEC) holds.
//
// Parameterized over seeds: each seed generates a different randomized
// nested-object workload (different schemas, scripts, contention).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

WorkloadSpec property_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.num_objects = 12;
  spec.min_pages = 2;
  spec.max_pages = 6;
  spec.num_transactions = 60;
  spec.max_depth = 3;
  spec.child_probability = 0.45;
  spec.contention_theta = 0.7;
  spec.touched_attr_fraction = 0.4;
  spec.write_fraction = 0.6;
  spec.read_method_fraction = 0.25;
  spec.seed = seed;
  return spec;
}

/// Snapshot of every attribute of every workload object after the run.
std::vector<std::int64_t> final_state(const Workload& workload,
                                      ProtocolKind protocol,
                                      std::uint64_t cluster_seed,
                                      SchedulerMode mode =
                                          SchedulerMode::kDeterministic) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = protocol;
  cfg.seed = cluster_seed;
  cfg.scheduler = mode;
  Cluster cluster(cfg);
  const auto results = cluster.execute(workload.instantiate(cluster));
  for (const auto& r : results) {
    if (!r.committed) return {};  // signal: property requires full commit
  }
  std::vector<std::int64_t> state;
  for (std::size_t obj = 0; obj < workload.num_objects(); ++obj) {
    const ObjectId id(obj);
    const ClassDef& cls =
        cluster.class_def(cluster.meta_of(id).cls);
    for (std::size_t a = 0; a < cls.layout().num_attributes(); ++a) {
      const std::string& name =
          cls.layout().attribute(AttrId(static_cast<std::uint32_t>(a))).name;
      state.push_back(cluster.peek<std::int64_t>(id, name));
    }
  }
  return state;
}

class CrossProtocolTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossProtocolTest, AllProtocolsReachTheSameFinalState) {
  const Workload workload(property_spec(GetParam()));
  const auto cotec = final_state(workload, ProtocolKind::kCotec, 1);
  ASSERT_FALSE(cotec.empty()) << "workload did not fully commit";
  for (const auto protocol :
       {ProtocolKind::kOtec, ProtocolKind::kLotec, ProtocolKind::kRc,
        ProtocolKind::kLotecDsd}) {
    const auto state = final_state(workload, protocol, 1);
    EXPECT_EQ(cotec, state) << "divergent state under "
                            << to_string(protocol);
  }
}

TEST_P(CrossProtocolTest, ByteOrderingHolds) {
  const Workload workload(property_spec(GetParam()));
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 256;
  const auto results = run_protocol_suite(
      workload,
      {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec},
      options);
  // The sound invariant is about page-data PAYLOAD: LOTEC never moves more
  // page bytes than OTEC, which never moves more than COTEC.  Total bytes
  // including fixed per-message headers can wobble by a few hundred bytes
  // because LOTEC deliberately splits the same payload across more, smaller
  // messages (scattered sources + demand fetches).
  const auto page_payload = [](const ScenarioResult& r) {
    std::uint64_t sum = 0;
    for (const auto& [id, c] : r.page_data)
      sum += c.bytes - c.messages * wire::kHeaderBytes;
    return sum;
  };
  EXPECT_LE(page_payload(results[2]), page_payload(results[1]))
      << "LOTEC must not exceed OTEC";
  EXPECT_LE(page_payload(results[1]), page_payload(results[0]))
      << "OTEC must not exceed COTEC";
  // All protocols commit the same transactions (identical lock behaviour).
  EXPECT_EQ(results[0].committed, results[1].committed);
  EXPECT_EQ(results[1].committed, results[2].committed);
}

TEST_P(CrossProtocolTest, PageDataOrderingHoldsPerObject) {
  const Workload workload(property_spec(GetParam()));
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 256;
  const auto results = run_protocol_suite(
      workload,
      {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec},
      options);
  // Page-data PAYLOAD (the protocols' actual policy surface) must be
  // ordered object by object.  Headers are excluded: LOTEC deliberately
  // splits the same payload over more, smaller messages (scattered sources
  // and demand fetches), so its header overhead can exceed OTEC's — that is
  // the paper's "many more messages (albeit small ones)" observation, not a
  // protocol violation.
  const auto payload = [](const TrafficCounter& c) {
    return c.bytes - c.messages * wire::kHeaderBytes;
  };
  for (const ObjectId id : results[0].object_ids) {
    const auto c = payload(results[0].page_data.at(id));
    const auto o = payload(results[1].page_data.at(id));
    const auto l = payload(results[2].page_data.at(id));
    EXPECT_LE(o, c) << "object " << id.value();
    EXPECT_LE(l, o) << "object " << id.value();
  }
}

TEST_P(CrossProtocolTest, DeterministicRunsAreBitIdentical) {
  const Workload workload(property_spec(GetParam()));
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 256;
  const ScenarioResult a =
      run_scenario(workload, ProtocolKind::kLotec, options);
  const ScenarioResult b =
      run_scenario(workload, ProtocolKind::kLotec, options);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.counter("txn.deadlock_retries"), b.counter("txn.deadlock_retries"));
  for (const ObjectId id : a.object_ids)
    EXPECT_EQ(a.object_traffic(id).bytes, b.object_traffic(id).bytes);
}

TEST_P(CrossProtocolTest, ConcurrentModeReachesAValidState) {
  // The concurrent scheduler cannot promise the same interleaving, but the
  // workload's effects are per-attribute increments, so every protocol and
  // schedule with full commit must produce attribute values bounded by the
  // number of writes — here we simply require full commit and equality
  // between two protocols under the SAME (deterministic) schedule plus a
  // successful concurrent run.
  const Workload workload(property_spec(GetParam()));
  const auto state = final_state(workload, ProtocolKind::kLotec, 1,
                                 SchedulerMode::kConcurrent);
  EXPECT_FALSE(state.empty()) << "concurrent run did not fully commit";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossProtocolTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(CrossProtocolAbortTest, InjectedAbortsStayConsistent) {
  WorkloadSpec spec = property_spec(909);
  spec.abort_probability = 0.2;
  const Workload workload(spec);
  const auto cotec = final_state(workload, ProtocolKind::kCotec, 1);
  ASSERT_FALSE(cotec.empty());
  const auto lotec = final_state(workload, ProtocolKind::kLotec, 1);
  EXPECT_EQ(cotec, lotec);
}

}  // namespace
}  // namespace lotec
