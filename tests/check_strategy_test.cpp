// Unit tests for the schedule-exploration strategies and the decision-trace
// format (src/check): trace round-tripping, replay clamping, random-walk /
// PCT determinism, and the DFS enumeration with partial-order pruning,
// driven against synthetic decision trees.
#include <gtest/gtest.h>

#include "check/decision_trace.hpp"
#include "check/strategy.hpp"
#include "common/error.hpp"

using namespace lotec;
using namespace lotec::check;

namespace {

constexpr std::size_t kNoSpawn = Strategy::kNoSpawn;

TEST(DecisionTraceTest, SerializeParseRoundTrip) {
  DecisionTrace t;
  t.decisions = {{2, 1}, {3, 0}, {4, 3}};
  const DecisionTrace back = DecisionTrace::parse(t.serialize());
  EXPECT_EQ(back, t);
  EXPECT_EQ(t.nonzero_picks(), 2u);
}

TEST(DecisionTraceTest, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)DecisionTrace::parse("not a trace\n2 1\n"), Error);
  // k < 2 is never recorded (the picker only runs at real decision points).
  EXPECT_THROW(
      (void)DecisionTrace::parse(DecisionTrace{{{2, 1}}}.serialize() + "1 0\n"),
      Error);
  // pick out of range for its k.
  EXPECT_THROW(
      (void)DecisionTrace::parse(DecisionTrace{{{2, 1}}}.serialize() + "2 2\n"),
      Error);
}

TEST(ReplayStrategyTest, ReplaysPicksAndClampsOutOfRange) {
  DecisionTrace t;
  t.decisions = {{3, 2}, {4, 3}};
  ReplayStrategy replay(t);
  ASSERT_TRUE(replay.begin_schedule(0));
  EXPECT_EQ(replay.pick({5, 6, 7}, kNoSpawn), 2u);
  // Recorded pick 3 but only 2 choices offered now: fall back to 0.
  EXPECT_EQ(replay.pick({5, 6}, kNoSpawn), 0u);
  // Past the end of the trace: 0.
  EXPECT_EQ(replay.pick({5, 6, 7}, kNoSpawn), 0u);
}

TEST(RandomWalkStrategyTest, DeterministicPerScheduleIndex) {
  RandomWalkStrategy a(99), b(99);
  for (const std::uint64_t index : {0ULL, 1ULL, 7ULL}) {
    ASSERT_TRUE(a.begin_schedule(index));
    ASSERT_TRUE(b.begin_schedule(index));
    for (int i = 0; i < 50; ++i) {
      const std::uint32_t pa = a.pick({0, 1, 2}, 3);
      EXPECT_EQ(pa, b.pick({0, 1, 2}, 3));
      EXPECT_LT(pa, 4u);
    }
  }
}

TEST(RandomWalkStrategyTest, DifferentIndicesGiveDifferentWalks) {
  RandomWalkStrategy s(7);
  std::vector<std::uint32_t> first, second;
  ASSERT_TRUE(s.begin_schedule(0));
  for (int i = 0; i < 32; ++i) first.push_back(s.pick({0, 1, 2, 3}, kNoSpawn));
  ASSERT_TRUE(s.begin_schedule(1));
  for (int i = 0; i < 32; ++i) second.push_back(s.pick({0, 1, 2, 3}, kNoSpawn));
  EXPECT_NE(first, second);
}

TEST(PctStrategyTest, DeterministicAndInRange) {
  PctStrategy a(5, 3), b(5, 3);
  for (const std::uint64_t index : {0ULL, 3ULL}) {
    ASSERT_TRUE(a.begin_schedule(index));
    ASSERT_TRUE(b.begin_schedule(index));
    for (int i = 0; i < 64; ++i) {
      if (i % 3 == 0) {
        a.note_message();
        b.note_message();
      }
      const std::uint32_t pa = a.pick({0, 1, 2}, 3);
      EXPECT_EQ(pa, b.pick({0, 1, 2}, 3));
      EXPECT_LT(pa, 4u);
    }
    a.end_schedule();
    b.end_schedule();
  }
}

TEST(PctStrategyTest, LeaderIsStableBetweenChangepoints) {
  // With no messages flowing, no changepoint fires, so the highest-priority
  // candidate keeps running — the defining property of PCT.
  PctStrategy s(123, 2);
  ASSERT_TRUE(s.begin_schedule(0));
  const std::uint32_t first = s.pick({0, 1, 2}, kNoSpawn);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(s.pick({0, 1, 2}, kNoSpawn), first);
}

// Drives the DFS against a synthetic two-decision tree where both
// candidates' first lock ops are writes to the SAME object (dependent),
// so nothing may be pruned and the full 2x2 tree is enumerated.
TEST(DfsStrategyTest, EnumeratesFullTreeWhenDependent) {
  DfsStrategy dfs(8);
  std::vector<std::vector<std::uint32_t>> schedules;
  std::uint64_t index = 0;
  while (dfs.begin_schedule(index++)) {
    std::vector<std::uint32_t> picks;
    for (int d = 0; d < 2; ++d) {
      const std::uint32_t p = dfs.pick({0, 1}, kNoSpawn);
      picks.push_back(p);
      // Both families run and immediately write the shared object.
      dfs.note_lock_op(0, 7, /*write=*/true);
      dfs.note_lock_op(1, 7, /*write=*/true);
    }
    dfs.end_schedule();
    schedules.push_back(picks);
    ASSERT_LT(index, 64u) << "DFS failed to exhaust";
  }
  EXPECT_EQ(schedules.size(), 4u);
  // All four leaves, first-child-first order.
  const std::vector<std::vector<std::uint32_t>> expect = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(schedules, expect);
}

TEST(DfsStrategyTest, PrunesIndependentSiblings) {
  // First lock ops touch DIFFERENT objects: the sibling's subtree is an
  // equivalent interleaving of the explored one, so each node collapses to
  // its first child and the whole tree is one schedule.
  DfsStrategy dfs(8);
  std::uint64_t schedules = 0;
  std::uint64_t index = 0;
  while (dfs.begin_schedule(index++)) {
    for (int d = 0; d < 2; ++d) {
      (void)dfs.pick({0, 1}, kNoSpawn);
      dfs.note_lock_op(0, 100, /*write=*/true);
      dfs.note_lock_op(1, 200, /*write=*/true);
    }
    dfs.end_schedule();
    ++schedules;
    ASSERT_LT(index, 64u);
  }
  EXPECT_EQ(schedules, 1u);
}

TEST(DfsStrategyTest, ReadsAreIndependentWritesAreNot) {
  // Same object, both reads: pruned down to one schedule.
  DfsStrategy reads(8);
  std::uint64_t n = 0, index = 0;
  while (reads.begin_schedule(index++)) {
    (void)reads.pick({0, 1}, kNoSpawn);
    reads.note_lock_op(0, 7, false);
    reads.note_lock_op(1, 7, false);
    reads.end_schedule();
    ++n;
    ASSERT_LT(index, 16u);
  }
  EXPECT_EQ(n, 1u);

  // Same object, read vs write: both orders matter.
  DfsStrategy mixed(8);
  n = 0;
  index = 0;
  while (mixed.begin_schedule(index++)) {
    (void)mixed.pick({0, 1}, kNoSpawn);
    mixed.note_lock_op(0, 7, false);
    mixed.note_lock_op(1, 7, true);
    mixed.end_schedule();
    ++n;
    ASSERT_LT(index, 16u);
  }
  EXPECT_EQ(n, 2u);
}

TEST(DfsStrategyTest, NeverPrunesUnknownFootprints) {
  // No lock ops observed during the schedule: footprints resolve to
  // "finished" only at end_schedule, so the first schedule explores slot 0
  // everywhere and the siblings are then pruned as independent.
  DfsStrategy dfs(8);
  std::uint64_t n = 0, index = 0;
  while (dfs.begin_schedule(index++)) {
    for (int d = 0; d < 3; ++d) (void)dfs.pick({0, 1, 2}, kNoSpawn);
    dfs.end_schedule();
    ++n;
    ASSERT_LT(index, 128u);
  }
  EXPECT_EQ(n, 1u);
}

TEST(DfsStrategyTest, DepthBoundLimitsBranching) {
  // max_depth 1: only the first decision branches; deeper picks default to
  // 0 untracked.  Dependent ops -> exactly k schedules.
  DfsStrategy dfs(1);
  std::vector<std::uint32_t> first_picks;
  std::uint64_t index = 0;
  while (dfs.begin_schedule(index++)) {
    first_picks.push_back(dfs.pick({0, 1, 2}, kNoSpawn));
    dfs.note_lock_op(0, 7, true);
    dfs.note_lock_op(1, 7, true);
    dfs.note_lock_op(2, 7, true);
    // Beyond the bound: untracked, always 0.
    EXPECT_EQ(dfs.pick({0, 1, 2}, kNoSpawn), 0u);
    EXPECT_EQ(dfs.stack_depth(), 1u);
    dfs.end_schedule();
    ASSERT_LT(index, 32u);
  }
  EXPECT_EQ(first_picks, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(DfsStrategyTest, SpawnSlotIsBranchedLikeAnyChoice) {
  // One runnable family plus a spawn candidate: k = 2, both orders explored
  // when the spawned family's first op conflicts.
  DfsStrategy dfs(4);
  std::vector<std::uint32_t> picks;
  std::uint64_t index = 0;
  while (dfs.begin_schedule(index++)) {
    picks.push_back(dfs.pick({0}, /*spawn_candidate=*/1));
    dfs.note_lock_op(0, 7, true);
    dfs.note_lock_op(1, 7, true);
    dfs.end_schedule();
    ASSERT_LT(index, 16u);
  }
  EXPECT_EQ(picks, (std::vector<std::uint32_t>{0, 1}));
}

}  // namespace
