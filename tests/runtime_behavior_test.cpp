// Runtime behaviours beyond the smoke tests: demand fetching under
// optimistic prediction, strict access checking, lock upgrades, RC eager
// pushes, read sharing across families, per-object byte attribution,
// GDO-replicated clusters, undo-strategy equivalence, and prefetch hints.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

namespace lotec {
namespace {

ClusterConfig base_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = protocol;
  cfg.page_size = 64;
  cfg.seed = 11;
  return cfg;
}

TEST(RuntimeBehaviorTest, LotecDemandFetchesMispredictedPages) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  // Three pages; the method reads a0 (page 0) and a2 (page 2) but the
  // optimistic hint covers only a0, so page 2 arrives by demand fetch.
  AttrSet reads({AttrId(0), AttrId(2)});
  AttrSet writes({AttrId(0)});
  AttrSet hint({AttrId(0)});
  ClassBuilder b("C", cfg.page_size);
  b.attribute("a0", 64).attribute("a1", 64).attribute("a2", 64);
  b.method_ids("m", reads, writes,
               [](MethodContext& ctx) {
                 const auto v = ctx.get<std::int64_t>(AttrId(2));
                 ctx.set<std::int64_t>(AttrId(0),
                                       ctx.get<std::int64_t>(AttrId(0)) + v +
                                           1);
               },
               false, hint);
  const ClassId cls = cluster.define_class(b);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  // Write from node 1 (pages fetched on demand where mispredicted), then
  // again from node 2.
  const TxnResult r1 = cluster.run_root(obj, "m", NodeId(1));
  ASSERT_TRUE(r1.committed);
  EXPECT_GE(r1.demand_fetches, 1u);
  const TxnResult r2 = cluster.run_root(obj, "m", NodeId(2));
  ASSERT_TRUE(r2.committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "a0"), 2);
  EXPECT_GE(cluster.stats().by_kind(MessageKind::kDemandFetchReply).messages,
            1u);
}

TEST(RuntimeBehaviorTest, NonLotecProtocolsNeverDemandFetch) {
  for (const auto protocol :
       {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kRc}) {
    ClusterConfig cfg = base_config(protocol);
    Cluster cluster(cfg);
    const ClassId cls = cluster.define_class(
        ClassBuilder("C", cfg.page_size)
            .attribute("a", 64)
            .attribute("b", 64)
            .method("m", {"a", "b"}, {"a"}, [](MethodContext& ctx) {
              ctx.set<std::int64_t>("a", ctx.get<std::int64_t>("b") + 1);
            }));
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    for (int i = 0; i < 6; ++i)
      ASSERT_TRUE(cluster.run_root(obj, "m", NodeId(1 + i % 3)).committed);
    EXPECT_EQ(cluster.stats().by_kind(MessageKind::kDemandFetchRequest)
                  .messages,
              0u);
  }
}

TEST(RuntimeBehaviorTest, StrictModeRejectsUndeclaredAccess) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("declared", 8)
          .attribute("secret", 8)
          .method("sneaky", {"declared"}, {"declared"},
                  [](MethodContext& ctx) {
                    (void)ctx.get<std::int64_t>("secret");  // not declared
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  EXPECT_THROW(cluster.run_root(obj, "sneaky", NodeId(1)), UsageError);
  // The failed family must have cleaned up: the object is lockable again.
  const ClassId ok = cluster.define_class(
      ClassBuilder("Ok", cfg.page_size)
          .attribute("x", 8)
          .method("m", {}, {"x"},
                  [](MethodContext& ctx) { ctx.set<std::int64_t>("x", 5); }));
  const ObjectId obj2 = cluster.create_object(ok, NodeId(2));
  EXPECT_TRUE(cluster.run_root(obj2, "m", NodeId(3)).committed);
}

TEST(RuntimeBehaviorTest, MayAccessUndeclaredAllowsDynamicMethods) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("a", 64)
          .attribute("b", 64)
          .method("dynamic", {}, {},
                  [](MethodContext& ctx) {
                    // Data-dependent access with no declaration.
                    ctx.set<std::int64_t>("b",
                                          ctx.get<std::int64_t>("a") + 9);
                  },
                  /*may_access_undeclared=*/true));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "dynamic", NodeId(1)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "b"), 9);
}

TEST(RuntimeBehaviorTest, ReadThenWriteUpgradesGlobalLock) {
  // A family whose root reads object X and then a child writes X requires
  // a GDO upgrade of the family's read lock.
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  const ClassId xcls = cluster.define_class(
      ClassBuilder("X", cfg.page_size)
          .attribute("v", 8)
          .method("read", {"v"}, {},
                  [](MethodContext& ctx) { (void)ctx.get<std::int64_t>("v"); })
          .method("write", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId x = cluster.create_object(xcls, NodeId(0));

  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", cfg.page_size)
          .attribute("pad", 8)
          .method("run", {}, {}, [x](MethodContext& ctx) {
            ASSERT_TRUE(ctx.invoke(x, "read"));   // family takes global R
            ASSERT_TRUE(ctx.invoke(x, "write"));  // needs upgrade to W
          }));
  const ObjectId d = cluster.create_object(driver, NodeId(1));
  ASSERT_TRUE(cluster.run_root(d, "run", NodeId(2)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(x, "v"), 1);
}

TEST(RuntimeBehaviorTest, RcPushesKeepCachingSitesCurrent) {
  ClusterConfig cfg = base_config(ProtocolKind::kRc);
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  // Nodes 1 and 2 cache the object; node 1's commit must push to 0 and 2.
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(2)).committed);
  const std::uint64_t pushes =
      cluster.stats().by_kind(MessageKind::kUpdatePush).messages;
  EXPECT_GE(pushes, 2u);
  // After the pushes every caching site holds the newest page: a third
  // acquisition fetches nothing.
  const auto fetches_before =
      cluster.stats().by_kind(MessageKind::kPageFetchReply).messages;
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kPageFetchReply).messages,
            fetches_before);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 3);
}

TEST(RuntimeBehaviorTest, ReadersFromDifferentFamiliesShareTheLock) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("read", {"v"}, {}, [](MethodContext& ctx) {
            (void)ctx.get<std::int64_t>("v");
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  std::vector<RootRequest> reqs;
  const MethodId read = cluster.method_id(obj, "read");
  for (int i = 0; i < 12; ++i)
    reqs.push_back(RootRequest{obj, read, NodeId(i % 4), {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));
  for (const auto& r : results) EXPECT_TRUE(r.committed);
  // Readers never wait: no queue/wakeup traffic at all.
  EXPECT_EQ(cluster.stats().by_kind(MessageKind::kLockGrantWakeup).messages,
            0u);
}

TEST(RuntimeBehaviorTest, PerObjectAttributionSeparatesTraffic) {
  ClusterConfig cfg = base_config(ProtocolKind::kCotec);
  Cluster cluster(cfg);
  // A big object and a small object; the big one must attract more bytes.
  ClassBuilder big("Big", cfg.page_size);
  big.attribute("blob", cfg.page_size * 32);
  big.method("touch", {"blob"}, {"blob"}, [](MethodContext& ctx) {
    ctx.set<std::int64_t>("blob", 1);
  });
  ClassBuilder small("Small", cfg.page_size);
  small.attribute("v", 8);
  small.method("touch", {"v"}, {"v"},
               [](MethodContext& ctx) { ctx.set<std::int64_t>("v", 1); });
  const ObjectId b = cluster.create_object(cluster.define_class(big),
                                           NodeId(0));
  const ObjectId s = cluster.create_object(cluster.define_class(small),
                                           NodeId(0));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.run_root(b, "touch", NodeId(1 + i % 3)).committed);
    ASSERT_TRUE(cluster.run_root(s, "touch", NodeId(1 + i % 3)).committed);
  }
  EXPECT_GT(cluster.stats().by_object(b).bytes,
            4 * cluster.stats().by_object(s).bytes);
  // The page-data view isolates the asymmetry even more sharply.
  EXPECT_GT(cluster.stats().page_data_by_object(b).bytes,
            10 * cluster.stats().page_data_by_object(s).bytes);
}

TEST(RuntimeBehaviorTest, ReplicatedGdoClusterWorks) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  cfg.gdo.replicate = true;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(i % 4)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 8);
  EXPECT_GT(cluster.stats().by_kind(MessageKind::kGdoReplicaSync).messages,
            0u);
}

TEST(RuntimeBehaviorTest, UndoStrategiesProduceIdenticalStates) {
  // The same commit/abort mix must leave identical object state whether
  // rollback uses byte-range undo logs or shadow pages (Section 4.1: "may
  // be done using either local UNDO logs or shadow pages").
  const auto run_with = [](UndoStrategy undo) {
    ClusterConfig cfg = base_config(ProtocolKind::kLotec);
    cfg.undo = undo;
    Cluster cluster(cfg);
    const ClassId cls = cluster.define_class(
        ClassBuilder("C", cfg.page_size)
            .attribute("v", 8)
            .attribute("w", 8)
            .method("bump", {"v", "w"}, {"v", "w"},
                    [](MethodContext& ctx) {
                      ctx.set<std::int64_t>("v",
                                            ctx.get<std::int64_t>("v") + 1);
                      ctx.set<std::int64_t>("w",
                                            ctx.get<std::int64_t>("w") + 10);
                    })
            .method("doomed", {"v", "w"}, {"v", "w"},
                    [](MethodContext& ctx) {
                      ctx.set<std::int64_t>("v", 999);
                      ctx.set<std::int64_t>("w", 999);
                      ctx.abort();
                    }));
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(cluster.run_root(obj, "bump", NodeId(i % 4)).committed);
      EXPECT_FALSE(cluster.run_root(obj, "doomed", NodeId((i + 1) % 4))
                       .committed);
    }
    return std::pair(cluster.peek<std::int64_t>(obj, "v"),
                     cluster.peek<std::int64_t>(obj, "w"));
  };
  const auto a = run_with(UndoStrategy::kByteRange);
  const auto b = run_with(UndoStrategy::kShadowPage);
  const std::pair<std::int64_t, std::int64_t> expected(6, 60);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a, b);
}

TEST(RuntimeBehaviorTest, PrefetchHintsPreAcquireLockSet) {
  ClusterConfig cfg = base_config(ProtocolKind::kLotec);
  Cluster cluster(cfg);
  const ClassId leaf = cluster.define_class(
      ClassBuilder("Leaf", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId l1 = cluster.create_object(leaf, NodeId(0));
  const ObjectId l2 = cluster.create_object(leaf, NodeId(1));
  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", cfg.page_size)
          .attribute("pad", 8)
          .method("run", {}, {}, [l1, l2](MethodContext& ctx) {
            ASSERT_TRUE(ctx.invoke(l1, "bump"));
            ASSERT_TRUE(ctx.invoke(l2, "bump"));
          }));
  const ObjectId d = cluster.create_object(driver, NodeId(2));

  RootRequest req;
  req.object = d;
  req.method = cluster.method_id(d, "run");
  req.node = NodeId(3);
  const MethodId bump = cluster.method_id(l1, "bump");
  req.prefetch = {{d, cluster.method_id(d, "run")}, {l1, bump}, {l2, bump}};
  const auto results = cluster.execute({std::move(req)});
  ASSERT_TRUE(results[0].committed);
  // The whole family cost at most one pipelined blocking round trip.
  EXPECT_LE(results[0].remote_round_trips, 1u);
  EXPECT_EQ(cluster.peek<std::int64_t>(l1, "v"), 1);
  EXPECT_EQ(cluster.peek<std::int64_t>(l2, "v"), 1);
}

TEST(RuntimeBehaviorTest, ConcurrentSchedulerMatchesDeterministicResults) {
  const auto final_value = [](SchedulerMode mode) {
    ClusterConfig cfg = base_config(ProtocolKind::kLotec);
    cfg.scheduler = mode;
    Cluster cluster(cfg);
    const ClassId cls = cluster.define_class(
        ClassBuilder("C", cfg.page_size)
            .attribute("v", 8)
            .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
              ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
            }));
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    std::vector<RootRequest> reqs;
    const MethodId bump = cluster.method_id(obj, "bump");
    for (int i = 0; i < 60; ++i)
      reqs.push_back(RootRequest{obj, bump, NodeId(i % 4), {}, nullptr});
    int committed = 0;
    for (const auto& r : cluster.execute(std::move(reqs)))
      committed += r.committed ? 1 : 0;
    EXPECT_EQ(committed, 60);
    return cluster.peek<std::int64_t>(obj, "v");
  };
  EXPECT_EQ(final_value(SchedulerMode::kDeterministic), 60);
  EXPECT_EQ(final_value(SchedulerMode::kConcurrent), 60);
}

}  // namespace
}  // namespace lotec
