// DeadlockDetector: cycle detection over waits-for edges and victim choice.
#include <gtest/gtest.h>

#include "gdo/waits_for.hpp"

namespace lotec {
namespace {

GdoService::WaitEdge edge(std::uint64_t waiter, std::uint64_t holder) {
  return {FamilyId(waiter), FamilyId(holder), ObjectId(0)};
}

TEST(WaitsForTest, NoEdgesNoCycle) {
  EXPECT_FALSE(DeadlockDetector::find_cycle({}));
}

TEST(WaitsForTest, ChainIsNotACycle) {
  EXPECT_FALSE(
      DeadlockDetector::find_cycle({edge(1, 2), edge(2, 3), edge(3, 4)}));
}

TEST(WaitsForTest, TwoCycleDetected) {
  const auto cycle = DeadlockDetector::find_cycle({edge(1, 2), edge(2, 1)});
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->families.size(), 2u);
  EXPECT_EQ(cycle->victim, FamilyId(2));  // youngest
}

TEST(WaitsForTest, SelfLoopDetected) {
  const auto cycle = DeadlockDetector::find_cycle({edge(7, 7)});
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(7));
}

TEST(WaitsForTest, LongCycleVictimIsYoungest) {
  const auto cycle = DeadlockDetector::find_cycle(
      {edge(3, 9), edge(9, 4), edge(4, 3), edge(1, 3)});
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(9));
  // The cycle contains exactly {3, 9, 4}.
  EXPECT_EQ(cycle->families.size(), 3u);
}

TEST(WaitsForTest, DiamondWithoutCycle) {
  EXPECT_FALSE(DeadlockDetector::find_cycle(
      {edge(1, 2), edge(1, 3), edge(2, 4), edge(3, 4)}));
}

TEST(WaitsForTest, CycleOffTheRootIsStillFound) {
  // 1 -> 2 -> 3 -> 2: traversal from 1 must find the {2,3} cycle.
  const auto cycle =
      DeadlockDetector::find_cycle({edge(1, 2), edge(2, 3), edge(3, 2)});
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(3));
  EXPECT_EQ(cycle->families.size(), 2u);
}

TEST(WaitsForTest, DeterministicAcrossEdgeOrder) {
  const std::vector<GdoService::WaitEdge> forward = {edge(1, 2), edge(2, 1),
                                                     edge(5, 6), edge(6, 5)};
  std::vector<GdoService::WaitEdge> backward(forward.rbegin(),
                                             forward.rend());
  const auto a = DeadlockDetector::find_cycle(forward);
  const auto b = DeadlockDetector::find_cycle(backward);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  // Roots visited in ascending family order -> the {1,2} cycle wins.
  EXPECT_EQ(a->victim, b->victim);
  EXPECT_EQ(a->victim, FamilyId(2));
}

TEST(WaitsForTest, DuplicateEdgesHarmless) {
  const auto cycle = DeadlockDetector::find_cycle(
      {edge(1, 2), edge(1, 2), edge(2, 1), edge(2, 1)});
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(2));
}

TEST(WaitsForTest, EndToEndFromGdoQueues) {
  // Build a genuine deadlock in the directory: F1 holds A and waits for B;
  // F2 holds B and waits for A.
  Transport transport(2);
  GdoService gdo(transport);
  gdo.register_object(ObjectId(1), 1, NodeId(0));
  gdo.register_object(ObjectId(2), 1, NodeId(1));
  (void)gdo.acquire(ObjectId(1), TxnId{FamilyId(1), 0}, NodeId(0),
                    LockMode::kWrite);
  (void)gdo.acquire(ObjectId(2), TxnId{FamilyId(2), 0}, NodeId(1),
                    LockMode::kWrite);
  (void)gdo.acquire(ObjectId(2), TxnId{FamilyId(1), 1}, NodeId(0),
                    LockMode::kWrite);  // queued
  EXPECT_FALSE(DeadlockDetector::detect(gdo));  // not yet a cycle
  (void)gdo.acquire(ObjectId(1), TxnId{FamilyId(2), 1}, NodeId(1),
                    LockMode::kWrite);  // queued -> cycle
  const auto cycle = DeadlockDetector::detect(gdo);
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(2));
}

TEST(WaitsForTest, UpgradeDeadlockDetected) {
  // Two readers both requesting upgrades wait on each other.
  Transport transport(2);
  GdoService gdo(transport);
  gdo.register_object(ObjectId(1), 1, NodeId(0));
  (void)gdo.acquire(ObjectId(1), TxnId{FamilyId(1), 0}, NodeId(0),
                    LockMode::kRead);
  (void)gdo.acquire(ObjectId(1), TxnId{FamilyId(2), 0}, NodeId(1),
                    LockMode::kRead);
  EXPECT_EQ(gdo.acquire(ObjectId(1), TxnId{FamilyId(1), 1}, NodeId(0),
                        LockMode::kWrite)
                .status,
            AcquireStatus::kQueued);
  EXPECT_EQ(gdo.acquire(ObjectId(1), TxnId{FamilyId(2), 1}, NodeId(1),
                        LockMode::kWrite)
                .status,
            AcquireStatus::kQueued);
  const auto cycle = DeadlockDetector::detect(gdo);
  ASSERT_TRUE(cycle);
  EXPECT_EQ(cycle->victim, FamilyId(2));
}

}  // namespace
}  // namespace lotec
