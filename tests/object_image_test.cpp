// ObjectImage: residency, page-straddling byte access, dirty tracking,
// version stamping, restore semantics, and PageStore behaviour.
#include <gtest/gtest.h>

#include <cstring>

#include "page/page_store.hpp"

namespace lotec {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(ObjectImageTest, MaterializeMakesZeroedPages) {
  ObjectImage img(ObjectId(1), 3, 16);
  EXPECT_FALSE(img.has_page(PageIndex(0)));
  img.materialize_all();
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(img.has_page(PageIndex(p)));
    EXPECT_EQ(img.page_version(PageIndex(p)), 0u);
  }
  std::vector<std::byte> buf(48);
  img.read_bytes(0, buf);
  for (const std::byte b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(ObjectImageTest, WriteReadAcrossPageBoundary) {
  ObjectImage img(ObjectId(1), 3, 16);
  img.materialize_all();
  const auto data = bytes_of("hello-across-pages!");
  img.write_bytes(10, data);  // spans pages 0 and 1
  std::vector<std::byte> buf(data.size());
  img.read_bytes(10, buf);
  EXPECT_EQ(string_of(buf), "hello-across-pages!");
  EXPECT_TRUE(img.dirty_pages().contains(PageIndex(0)));
  EXPECT_TRUE(img.dirty_pages().contains(PageIndex(1)));
  EXPECT_FALSE(img.dirty_pages().contains(PageIndex(2)));
}

TEST(ObjectImageTest, AccessToMissingPageThrows) {
  ObjectImage img(ObjectId(9), 2, 16);
  img.install_page(PageIndex(0), Page{.data = std::vector<std::byte>(16), .version = 3, .history = {}});
  std::vector<std::byte> buf(4);
  EXPECT_NO_THROW(img.read_bytes(0, buf));
  try {
    img.read_bytes(20, buf);
    FAIL() << "expected PageNotResident";
  } catch (const PageNotResident& e) {
    EXPECT_EQ(e.object(), ObjectId(9));
    EXPECT_EQ(e.page(), PageIndex(1));
  }
}

TEST(ObjectImageTest, FirstMissingPageScansRange) {
  ObjectImage img(ObjectId(1), 4, 16);
  img.install_page(PageIndex(0), Page{.data = std::vector<std::byte>(16), .version = 1, .history = {}});
  img.install_page(PageIndex(2), Page{.data = std::vector<std::byte>(16), .version = 1, .history = {}});
  EXPECT_EQ(img.first_missing_page(0, 16), std::nullopt);
  EXPECT_EQ(img.first_missing_page(0, 17), PageIndex(1));
  EXPECT_EQ(img.first_missing_page(40, 16), PageIndex(3));
  EXPECT_EQ(img.first_missing_page(0, 0), std::nullopt);
}

TEST(ObjectImageTest, InstallCarriesVersion) {
  ObjectImage img(ObjectId(1), 2, 16);
  img.install_page(PageIndex(1), Page{.data = std::vector<std::byte>(16), .version = 42, .history = {}});
  EXPECT_EQ(img.page_version(PageIndex(1)), 42u);
  EXPECT_EQ(img.page_version(PageIndex(0)), 0u);  // absent -> 0
  EXPECT_THROW(
      img.install_page(PageIndex(0), Page{.data = std::vector<std::byte>(8), .version = 1, .history = {}}),
      UsageError);
}

TEST(ObjectImageTest, StampDirtyAssignsVersionAndClears) {
  ObjectImage img(ObjectId(1), 3, 16);
  img.materialize_all();
  img.write_bytes(0, bytes_of("x"));
  img.write_bytes(32, bytes_of("y"));
  const PageSet stamped = img.stamp_dirty(7);
  EXPECT_EQ(stamped.count(), 2u);
  EXPECT_EQ(img.page_version(PageIndex(0)), 7u);
  EXPECT_EQ(img.page_version(PageIndex(1)), 0u);  // untouched
  EXPECT_EQ(img.page_version(PageIndex(2)), 7u);
  EXPECT_TRUE(img.dirty_pages().empty());
}

TEST(ObjectImageTest, RestoreBytesDoesNotDirty) {
  ObjectImage img(ObjectId(1), 1, 16);
  img.materialize_all();
  img.clear_dirty();
  img.restore_bytes(4, bytes_of("abc"));
  EXPECT_TRUE(img.dirty_pages().empty());
  std::vector<std::byte> buf(3);
  img.read_bytes(4, buf);
  EXPECT_EQ(string_of(buf), "abc");
}

TEST(ObjectImageTest, RestorePageReplacesContentAndVersion) {
  ObjectImage img(ObjectId(1), 1, 4);
  img.materialize_all();
  img.write_bytes(0, bytes_of("zzzz"));
  Page before{.data = bytes_of("abcd"), .version = 5, .history = {}};
  img.restore_page(PageIndex(0), before);
  std::vector<std::byte> buf(4);
  img.read_bytes(0, buf);
  EXPECT_EQ(string_of(buf), "abcd");
  EXPECT_EQ(img.page_version(PageIndex(0)), 5u);
}

TEST(ObjectImageTest, EvictDropsPageAndDirtyBit) {
  ObjectImage img(ObjectId(1), 2, 16);
  img.materialize_all();
  img.write_bytes(0, bytes_of("q"));
  img.evict_page(PageIndex(0));
  EXPECT_FALSE(img.has_page(PageIndex(0)));
  EXPECT_TRUE(img.dirty_pages().empty());
  EXPECT_EQ(img.resident().count(), 1u);
}

TEST(ObjectImageTest, RejectsEmptyGeometry) {
  EXPECT_THROW(ObjectImage(ObjectId(1), 0, 16), UsageError);
  EXPECT_THROW(ObjectImage(ObjectId(1), 4, 0), UsageError);
}

TEST(PageStoreTest, CreateGetFindEvict) {
  PageStore store;
  EXPECT_FALSE(store.contains(ObjectId(1)));
  ObjectImage& img = store.create(ObjectId(1), 2, 16, /*materialize=*/true);
  EXPECT_TRUE(store.contains(ObjectId(1)));
  EXPECT_EQ(&store.get(ObjectId(1)), &img);
  EXPECT_EQ(store.find(ObjectId(2)), nullptr);
  EXPECT_THROW((void)store.get(ObjectId(2)), UsageError);
  EXPECT_THROW(store.create(ObjectId(1), 2, 16, false), UsageError);
  EXPECT_EQ(store.resident_pages(), 2u);
  store.evict(ObjectId(1));
  EXPECT_FALSE(store.contains(ObjectId(1)));
}

TEST(PageStoreTest, GetOrCreateStartsEmpty) {
  PageStore store;
  ObjectImage& img = store.get_or_create(ObjectId(5), 3, 16);
  EXPECT_EQ(img.resident().count(), 0u);
  EXPECT_EQ(&store.get_or_create(ObjectId(5), 3, 16), &img);
  EXPECT_EQ(store.num_objects(), 1u);
}

}  // namespace
}  // namespace lotec
