// Integration tests for the schedule checker (src/check/checker): clean
// exploration finds nothing, the break_retention mutation is caught within
// a bounded schedule budget with a minimized bit-identically-replayable
// counterexample, and the passive CheckSink seam leaves message traffic
// unchanged.
#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "workload/generator.hpp"

using namespace lotec;
using namespace lotec::check;

namespace {

TEST(CheckExploreTest, CleanTinyScenarioHasNoViolations) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.mode = ExploreMode::kRandom;
  opts.max_schedules = 40;
  ScheduleChecker checker(opts);
  const CheckReport report = checker.run();
  EXPECT_EQ(report.schedules_run, 40u);
  EXPECT_EQ(report.schedules_with_errors, 0u);
  EXPECT_FALSE(report.violation.has_value()) << report.summary();
  EXPECT_NE(report.summary().find("no invariant violations"),
            std::string::npos);
}

TEST(CheckExploreTest, PctModeRunsClean) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.mode = ExploreMode::kPct;
  opts.pct_changepoints = 3;
  opts.max_schedules = 25;
  const CheckReport report = ScheduleChecker(opts).run();
  EXPECT_EQ(report.schedules_run, 25u);
  EXPECT_FALSE(report.violation.has_value()) << report.summary();
}

TEST(CheckExploreTest, DfsExhaustsTheBoundedTree) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.mode = ExploreMode::kDfs;
  opts.dfs_max_depth = 6;
  opts.max_schedules = 10000;
  const CheckReport report = ScheduleChecker(opts).run();
  EXPECT_TRUE(report.exhausted);
  EXPECT_GT(report.schedules_run, 1u);  // the tree really branched
  EXPECT_LT(report.schedules_run, 10000u);
  EXPECT_FALSE(report.violation.has_value()) << report.summary();
}

TEST(CheckExploreTest, BudgetStopsExploration) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.max_schedules = 1000000;
  opts.budget_seconds = 1e-9;  // expires by the second iteration at latest
  const CheckReport report = ScheduleChecker(opts).run();
  EXPECT_TRUE(report.budget_expired);
  EXPECT_LE(report.schedules_run, 1u);
}

// The ISSUE acceptance bar: with retention broken via the hidden mutation
// flag, a counterexample must surface within 5,000 schedules on the small
// scenario, minimize, and replay bit-identically twice in a row.
TEST(CheckExploreTest, BreakRetentionYieldsVerifiedCounterexample) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.break_retention = true;
  opts.max_schedules = 5000;
  ScheduleChecker checker(opts);
  const CheckReport report = checker.run();

  ASSERT_TRUE(report.violation.has_value()) << report.summary();
  EXPECT_TRUE(report.violation->oracle == "lock-discipline" ||
              report.violation->oracle == "serializability")
      << report.violation->oracle;
  EXPECT_TRUE(report.replay_verified) << report.summary();
  EXPECT_GT(report.counterexample_messages, 0u);

  // An independent replay of the shipped counterexample reproduces the
  // identical violation and message count (and verifies again).
  const CheckReport again = checker.replay(report.counterexample);
  ASSERT_TRUE(again.violation.has_value());
  EXPECT_EQ(*again.violation, *report.violation);
  EXPECT_EQ(again.counterexample_messages, report.counterexample_messages);
  EXPECT_TRUE(again.replay_verified);

  // The trace survives a serialize/parse round trip (the CI artifact path).
  const DecisionTrace parsed =
      DecisionTrace::parse(report.counterexample.serialize());
  EXPECT_EQ(parsed, report.counterexample);
}

TEST(CheckExploreTest, MinimizationOnlyShrinksTheTrace) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.break_retention = true;
  opts.max_schedules = 5000;
  opts.minimize = false;
  const CheckReport unminimized = ScheduleChecker(opts).run();
  ASSERT_TRUE(unminimized.violation.has_value());
  EXPECT_EQ(unminimized.minimize_replays, 0u);

  opts.minimize = true;
  const CheckReport minimized = ScheduleChecker(opts).run();
  ASSERT_TRUE(minimized.violation.has_value());
  EXPECT_LE(minimized.counterexample.nonzero_picks(),
            unminimized.counterexample.nonzero_picks());
  EXPECT_TRUE(minimized.replay_verified);
}

TEST(CheckExploreTest, MutationIsAlsoCaughtUnderDfs) {
  CheckOptions opts;
  opts.scenario = check_tiny();
  opts.mode = ExploreMode::kDfs;
  opts.dfs_max_depth = 8;
  opts.break_retention = true;
  opts.max_schedules = 5000;
  const CheckReport report = ScheduleChecker(opts).run();
  ASSERT_TRUE(report.violation.has_value()) << report.summary();
  EXPECT_TRUE(report.replay_verified);
}

// With a CheckSink attached but every hook left at its no-op default, the
// cluster's message traffic must be bit-identical to a run with no sink at
// all — the zero-overhead guarantee the seam promises (the bench
// BENCH_check_overhead gates the same property with timing).
TEST(CheckExploreTest, PassiveSinkLeavesTrafficBitIdentical) {
  const CheckScenario scenario = check_tiny();
  const Workload workload(scenario.workload);

  auto run = [&](CheckSink* sink) {
    ClusterConfig cfg;
    cfg.nodes = scenario.nodes;
    cfg.page_size = 256;
    cfg.seed = 42;
    cfg.check_sink = sink;
    Cluster cluster(cfg);
    (void)cluster.execute(workload.instantiate(cluster));
    return std::pair{cluster.stats().total().messages,
                     cluster.stats().total().bytes};
  };

  CheckSink passive;  // every hook is a default no-op
  const auto without = run(nullptr);
  const auto with = run(&passive);
  EXPECT_EQ(without, with);
}

TEST(CheckExploreTest, ReplayOfEmptyTraceIsDefaultSchedule) {
  // An empty trace replays as "always pick 0" — a legal schedule that runs
  // to completion without violations on the clean scenario.
  CheckOptions opts;
  opts.scenario = check_tiny();
  ScheduleChecker checker(opts);
  const CheckReport report = checker.replay(DecisionTrace{});
  EXPECT_FALSE(report.violation.has_value());
  EXPECT_TRUE(report.replay_verified);
  EXPECT_GT(report.counterexample_messages, 0u);
}

}  // namespace
