// Golden message-count regression: the fig2 scenario's per-protocol traffic
// totals, pinned exactly.  Any change to the locking or transfer paths that
// alters the wire behaviour of a *disabled*-extensions run (lock_cache off,
// no faults) must show up here as a conscious golden update — this is the
// bit-identical guard for the paper-figure configurations.
#include <gtest/gtest.h>

#include <array>

#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

struct Golden {
  ProtocolKind protocol;
  std::uint64_t messages;
  std::uint64_t bytes;
  std::uint64_t lock_messages;
  std::uint64_t page_messages;
};

// Captured from a clean run of scenarios::medium_high_contention() with the
// default ExperimentOptions (16 nodes, 4 KiB pages, cluster seed 7).
constexpr std::array<Golden, kNumProtocols> kGolden = {{
    {ProtocolKind::kCotec, 10243u, 25956160u, 6455u, 3788u},
    {ProtocolKind::kOtec, 9725u, 18912048u, 6455u, 3270u},
    {ProtocolKind::kLotec, 11177u, 17618176u, 6455u, 4722u},
    {ProtocolKind::kRc, 21881u, 129854976u, 6455u, 15426u},
    {ProtocolKind::kLotecDsd, 11177u, 15575848u, 6455u, 4722u},
}};

TEST(MessageCountTest, Fig2ScenarioTrafficIsPinnedPerProtocol) {
  const Workload workload(scenarios::medium_high_contention());
  for (const Golden& g : kGolden) {
    const ScenarioResult r = run_scenario(workload, g.protocol);
    EXPECT_EQ(r.total.messages, g.messages) << to_string(g.protocol);
    EXPECT_EQ(r.total.bytes, g.bytes) << to_string(g.protocol);
    EXPECT_EQ(r.counter("net.lock_messages"), g.lock_messages) << to_string(g.protocol);
    EXPECT_EQ(r.counter("net.page_messages"), g.page_messages) << to_string(g.protocol);
    EXPECT_EQ(r.counter("cache.regrants"), 0u) << to_string(g.protocol);
  }
}

}  // namespace
}  // namespace lotec
