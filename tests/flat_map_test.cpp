// FlatMap correctness: API semantics, tombstone/rehash behaviour, and a
// randomized property test against std::unordered_map as the reference
// model.  FlatMap backs the GDO entry map, page-store index and per-family
// tables, so this is the memory-safety surface the sanitize CI job leans
// on.
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace lotec {
namespace {

TEST(FlatMapTest, EmptyMapBasics) {
  FlatMap<int, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.count(7), 0u);
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.begin(), m.end());
  EXPECT_THROW(m.at(7), std::out_of_range);
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int, std::string> m;
  auto [it, inserted] = m.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "one");

  auto [it2, inserted2] = m.try_emplace(1, "uno");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "one");  // try_emplace does not overwrite

  m.insert_or_assign(1, "uno");
  EXPECT_EQ(m.at(1), "uno");

  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(2));

  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(2), "two");
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs) {
  FlatMap<int, int> m;
  EXPECT_EQ(m[5], 0);
  m[5] += 3;
  EXPECT_EQ(m.at(5), 3);
}

TEST(FlatMapTest, RehashPreservesContents) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 1000; ++i) m[i] = i * 31;
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(m.contains(i)) << i;
    EXPECT_EQ(m.at(i), i * 31);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<int, int> m;
  m.reserve(100);
  const auto cap = m.capacity();
  for (int i = 0; i < 100; ++i) m[i] = i;
  EXPECT_EQ(m.capacity(), cap) << "reserve(100) must absorb 100 inserts";
}

TEST(FlatMapTest, TombstoneReuseDoesNotGrowUnbounded) {
  // Insert/erase churn at constant live size must not balloon the table:
  // tombstones are reclaimed by rehash-in-place or slot reuse.
  FlatMap<int, int> m;
  for (int i = 0; i < 10000; ++i) {
    m[i] = i;
    m.erase(i - 5);  // keep ~5 live
  }
  EXPECT_LE(m.size(), 6u);
  EXPECT_LE(m.capacity(), 1024u)
      << "churn at ~5 live elements grew capacity to " << m.capacity();
}

TEST(FlatMapTest, EraseDuringIterationViaIterator) {
  FlatMap<int, int> m;
  for (int i = 0; i < 50; ++i) m[i] = i;
  std::size_t erased = 0;
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  EXPECT_EQ(erased, 25u);
  EXPECT_EQ(m.size(), 25u);
  for (const auto& [k, v] : m) EXPECT_EQ(k % 2, 1);
}

TEST(FlatMapTest, ClearKeepsCapacityAndWorksAfter) {
  FlatMap<int, int> m;
  for (int i = 0; i < 200; ++i) m[i] = i;
  const auto cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  m[42] = 7;
  EXPECT_EQ(m.at(42), 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, CopyAndMove) {
  FlatMap<int, std::string> a;
  for (int i = 0; i < 64; ++i) a[i] = std::to_string(i);

  FlatMap<int, std::string> b = a;  // copy
  EXPECT_EQ(b.size(), 64u);
  b[64] = "sixty-four";
  EXPECT_FALSE(a.contains(64)) << "copy must be independent";

  FlatMap<int, std::string> c = std::move(a);  // move
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(c.at(63), "63");

  c = std::move(b);  // move-assign over live contents
  EXPECT_EQ(c.size(), 65u);
  EXPECT_EQ(c.at(64), "sixty-four");
}

TEST(FlatMapTest, WorksWithTypedIds) {
  // The real hot-path key type: strongly-typed Id with its std::hash
  // specialization.
  FlatMap<ObjectId, int> m;
  for (std::uint32_t i = 0; i < 100; ++i) m[ObjectId{i}] = static_cast<int>(i);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.at(ObjectId{57}), 57);
  EXPECT_EQ(m.erase(ObjectId{57}), 1u);
  EXPECT_FALSE(m.contains(ObjectId{57}));
}

TEST(FlatMapTest, MoveOnlyValues) {
  // PageStore keeps pages behind unique_ptr for pointer stability; the map
  // must support move-only mapped types.
  FlatMap<int, std::unique_ptr<int>> m;
  m.try_emplace(1, std::make_unique<int>(10));
  m.insert_or_assign(2, std::make_unique<int>(20));
  EXPECT_EQ(*m.at(1), 10);
  EXPECT_EQ(*m.at(2), 20);
  m.insert_or_assign(1, std::make_unique<int>(11));
  EXPECT_EQ(*m.at(1), 11);
  m.erase(1);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, PropertyVsUnorderedMapReference) {
  // Randomized op sequence applied to both maps; contents must agree after
  // every op.  Keys drawn from a small domain to force collisions, erases,
  // tombstone reuse and rehashes.
  std::mt19937_64 rng(20260807);
  FlatMap<std::uint32_t, std::uint64_t> subject;
  std::unordered_map<std::uint32_t, std::uint64_t> reference;

  for (int op = 0; op < 20000; ++op) {
    const std::uint32_t key = static_cast<std::uint32_t>(rng() % 512);
    const std::uint64_t value = rng();
    switch (rng() % 5) {
      case 0:
      case 1: {  // insert_or_assign (weighted: maps grow)
        subject.insert_or_assign(key, value);
        reference[key] = value;
        break;
      }
      case 2: {  // try_emplace
        const auto [it, inserted] = subject.try_emplace(key, value);
        const auto [rit, rinserted] = reference.try_emplace(key, value);
        ASSERT_EQ(inserted, rinserted) << "op " << op;
        ASSERT_EQ(it->second, rit->second) << "op " << op;
        break;
      }
      case 3: {  // erase
        ASSERT_EQ(subject.erase(key), reference.erase(key)) << "op " << op;
        break;
      }
      case 4: {  // find
        const auto it = subject.find(key);
        const auto rit = reference.find(key);
        ASSERT_EQ(it != subject.end(), rit != reference.end()) << "op " << op;
        if (rit != reference.end()) ASSERT_EQ(it->second, rit->second);
        break;
      }
    }
    ASSERT_EQ(subject.size(), reference.size()) << "op " << op;
  }

  // Full-content equivalence both directions.
  std::size_t visited = 0;
  for (const auto& [k, v] : subject) {
    const auto rit = reference.find(k);
    ASSERT_NE(rit, reference.end()) << "stale key " << k;
    ASSERT_EQ(v, rit->second);
    ++visited;
  }
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMapTest, DeterministicIterationOrderForFixedInsertSequence) {
  // Two maps fed the same key sequence must iterate identically — the
  // property the deterministic scheduler relies on for any migrated table
  // that gets iterated.
  auto build = [] {
    FlatMap<std::uint64_t, int> m;
    std::mt19937_64 rng(99);
    for (int i = 0; i < 300; ++i) m[rng() % 1000] = i;
    return m;
  };
  const auto a = build();
  const auto b = build();
  std::vector<std::uint64_t> ka, kb;
  for (const auto& [k, v] : a) ka.push_back(k);
  for (const auto& [k, v] : b) kb.push_back(k);
  EXPECT_EQ(ka, kb);
}

}  // namespace
}  // namespace lotec
