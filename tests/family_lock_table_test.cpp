// FamilyLockTable: the local half of Algorithm 4.1 and the lock-disposition
// rules 1-5 of Section 4.1 — grants from retention, read sharing over
// ancestors, inheritance at pre-commit, abort disposition, and the run-time
// preclusion of mutually recursive invocations.
#include <gtest/gtest.h>

#include "txn/family.hpp"

namespace lotec {
namespace {

class FamilyLockTableTest : public ::testing::Test {
 protected:
  FamilyLockTableTest() : family_(FamilyId(1), NodeId(0),
                                  UndoStrategy::kByteRange) {
    root_ = &family_.begin_root(ObjectId(100), MethodId(0));
  }

  FamilyLockTable& table() { return family_.locks(); }

  Family family_;
  Transaction* root_ = nullptr;
  const ObjectId obj_{ObjectId(7)};
};

TEST_F(FamilyLockTableTest, UnknownObjectNeedsGlobal) {
  EXPECT_EQ(table().try_local_acquire(*root_, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kNeedGlobal);
  EXPECT_EQ(table().size(), 0u);
}

TEST_F(FamilyLockTableTest, GlobalGrantRecordsHolder) {
  table().on_global_grant(*root_, obj_, LockMode::kWrite, false);
  const LocalLock* lock = table().find(obj_);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->global_mode, LockMode::kWrite);
  EXPECT_TRUE(lock->holds(0));
  EXPECT_THROW(table().on_global_grant(*root_, obj_, LockMode::kWrite, false),
               UsageError);  // duplicate
}

TEST_F(FamilyLockTableTest, ReacquireByHolderIsLocalNoop) {
  table().on_global_grant(*root_, obj_, LockMode::kWrite, false);
  EXPECT_EQ(table().try_local_acquire(*root_, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kGranted);
}

TEST_F(FamilyLockTableTest, DescendantAcquiresFromRetainer) {
  // Child acquires, pre-commits -> root retains (rule 3); grandchild may
  // then acquire from the retention (rule 1).
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  table().on_global_grant(child, obj_, LockMode::kWrite, false);
  child.pre_commit();
  table().on_pre_commit(child);

  const LocalLock* lock = table().find(obj_);
  ASSERT_NE(lock, nullptr);
  EXPECT_FALSE(lock->held());
  EXPECT_EQ(lock->retainers.count(0), 1u);  // root retains

  Transaction& second = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(table().try_local_acquire(second, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kGranted);
  EXPECT_TRUE(table().find(obj_)->holds(second.id().serial));
}

TEST_F(FamilyLockTableTest, WriteRecursionOverAncestorPrecluded) {
  table().on_global_grant(*root_, obj_, LockMode::kWrite, false);
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_THROW(table().try_local_acquire(child, obj_, LockMode::kWrite),
               RecursiveInvocationError);
  EXPECT_THROW(table().try_local_acquire(child, obj_, LockMode::kRead),
               RecursiveInvocationError);  // lock held for writing
}

TEST_F(FamilyLockTableTest, ReadOverAncestorReadIsShared) {
  // Algorithm 4.1: "ELSE grant the Read lock to the requesting transaction".
  table().on_global_grant(*root_, obj_, LockMode::kRead, false);
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(table().try_local_acquire(child, obj_, LockMode::kRead),
            LocalAcquireOutcome::kGranted);
  EXPECT_TRUE(table().find(obj_)->holds(0));
  EXPECT_TRUE(table().find(obj_)->holds(child.id().serial));
}

TEST_F(FamilyLockTableTest, WriteOverAncestorReadIsPrecludedNotUpgraded) {
  table().on_global_grant(*root_, obj_, LockMode::kRead, false);
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_THROW(table().try_local_acquire(child, obj_, LockMode::kWrite),
               RecursiveInvocationError);
}

TEST_F(FamilyLockTableTest, WriteFromRetainedReadNeedsUpgrade) {
  // Child took a READ lock, pre-committed; root retains at global Read.
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  table().on_global_grant(child, obj_, LockMode::kRead, false);
  child.pre_commit();
  table().on_pre_commit(child);

  Transaction& writer = family_.begin_child(*root_, obj_, MethodId(1));
  EXPECT_EQ(table().try_local_acquire(writer, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kNeedUpgrade);
  table().on_global_grant(writer, obj_, LockMode::kWrite, /*upgrade=*/true);
  EXPECT_EQ(table().find(obj_)->global_mode, LockMode::kWrite);
  EXPECT_TRUE(table().find(obj_)->holds(writer.id().serial));
}

TEST_F(FamilyLockTableTest, AbortReleasesUnretainedLocks) {
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  table().on_global_grant(child, obj_, LockMode::kWrite, false);
  const auto released = table().on_abort(child);
  ASSERT_EQ(released.size(), 1u);  // rule 4: nothing retained -> release
  EXPECT_EQ(released[0], obj_);
  EXPECT_EQ(table().find(obj_), nullptr);
}

TEST_F(FamilyLockTableTest, AbortKeepsAncestorRetainedLocks) {
  // c1 acquires and pre-commits (root retains); c2 re-acquires then aborts:
  // the root continues retaining (rule 4), no global release.
  Transaction& c1 = family_.begin_child(*root_, obj_, MethodId(0));
  table().on_global_grant(c1, obj_, LockMode::kWrite, false);
  c1.pre_commit();
  table().on_pre_commit(c1);

  Transaction& c2 = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(table().try_local_acquire(c2, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kGranted);
  const auto released = table().on_abort(c2);
  EXPECT_TRUE(released.empty());
  const LocalLock* lock = table().find(obj_);
  ASSERT_NE(lock, nullptr);
  EXPECT_FALSE(lock->held());
  EXPECT_EQ(lock->retainers.count(0), 1u);
}

TEST_F(FamilyLockTableTest, MultiLevelInheritanceWalksUp) {
  // grandchild acquires; pre-commit moves it to child; child's pre-commit
  // moves it to root.
  Transaction& child = family_.begin_child(*root_, ObjectId(50), MethodId(0));
  Transaction& grand = family_.begin_child(child, obj_, MethodId(0));
  table().on_global_grant(grand, obj_, LockMode::kWrite, false);

  grand.pre_commit();
  table().on_pre_commit(grand);
  EXPECT_EQ(table().find(obj_)->retainers.count(child.id().serial), 1u);

  child.pre_commit();
  table().on_pre_commit(child);
  EXPECT_EQ(table().find(obj_)->retainers.count(0), 1u);
  EXPECT_EQ(table().find(obj_)->retainers.count(child.id().serial), 0u);
}

TEST_F(FamilyLockTableTest, PrefetchGrantIsRetainedByRoot) {
  table().on_prefetch_grant(*root_, obj_, LockMode::kWrite);
  const LocalLock* lock = table().find(obj_);
  ASSERT_NE(lock, nullptr);
  EXPECT_FALSE(lock->held());
  EXPECT_EQ(lock->retainers.count(0), 1u);

  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(table().try_local_acquire(child, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kGranted);

  Transaction& deep = family_.begin_child(child, ObjectId(9), MethodId(0));
  EXPECT_THROW(table().on_prefetch_grant(deep, ObjectId(9), LockMode::kRead),
               UsageError);  // only roots prefetch
}

TEST_F(FamilyLockTableTest, AllObjectsEnumeratesLockSet) {
  table().on_global_grant(*root_, obj_, LockMode::kWrite, false);
  table().on_global_grant(*root_, ObjectId(8), LockMode::kRead, false);
  auto all = table().all_objects();
  EXPECT_EQ(all.size(), 2u);
  table().clear();
  EXPECT_TRUE(table().all_objects().empty());
}

}  // namespace
}  // namespace lotec
