// LOTEC-DSD (Section 4.2 / Section 6 extension): sub-page delta transfers.
// Correctness must be identical to LOTEC; the wire carries only the
// changed byte ranges when the acquirer is exactly one version behind, and
// falls back to full pages otherwise.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "sim/experiment.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

TEST(PageDeltaTest, StampRecordsCoalescedRanges) {
  ObjectImage img(ObjectId(1), 2, 64);
  img.materialize_all();
  std::vector<std::byte> a(8, std::byte{1});
  img.write_bytes(0, a);    // page 0: [0,8)
  img.write_bytes(4, a);    // overlaps -> coalesce to [0,12)
  img.write_bytes(20, a);   // separate range [20,28)
  img.write_bytes(60, a);   // straddles into page 1: [60,64) + [0,4)

  img.stamp_dirty(5);
  const PageDelta* d0 = img.delta_of(PageIndex(0));
  ASSERT_NE(d0, nullptr);
  EXPECT_EQ(d0->from_version, 0u);
  ASSERT_EQ(d0->ranges.size(), 3u);
  EXPECT_EQ(d0->ranges[0], (std::pair<std::uint32_t, std::uint32_t>(0, 12)));
  EXPECT_EQ(d0->ranges[1], (std::pair<std::uint32_t, std::uint32_t>(20, 8)));
  EXPECT_EQ(d0->ranges[2], (std::pair<std::uint32_t, std::uint32_t>(60, 4)));
  // 24 payload bytes + 3 range descriptors.
  EXPECT_EQ(d0->wire_bytes(), 24u + 3 * 8u);

  const PageDelta* d1 = img.delta_of(PageIndex(1));
  ASSERT_NE(d1, nullptr);
  ASSERT_EQ(d1->ranges.size(), 1u);
  EXPECT_EQ(d1->ranges[0], (std::pair<std::uint32_t, std::uint32_t>(0, 4)));
}

TEST(PageDeltaTest, ClearDirtyDropsPendingRanges) {
  ObjectImage img(ObjectId(1), 1, 64);
  img.materialize_all();
  std::vector<std::byte> a(8, std::byte{1});
  img.write_bytes(0, a);
  img.clear_dirty();
  img.write_bytes(16, a);
  img.stamp_dirty(1);
  const PageDelta* d = img.delta_of(PageIndex(0));
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->ranges.size(), 1u);
  EXPECT_EQ(d->ranges[0].first, 16u);  // aborted epoch's range is gone
}

ClusterConfig dsd_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.protocol = protocol;
  cfg.page_size = 4096;
  cfg.seed = 91;
  return cfg;
}

ClassBuilder sparse_class(std::uint32_t page_size) {
  // One narrow counter inside an otherwise untouched 4 KB page.
  return ClassBuilder("Sparse", page_size)
      .attribute("counter", 8)
      .attribute("pad", page_size)  // second page, never written
      .method("bump", {"counter"}, {"counter"}, [](MethodContext& ctx) {
        ctx.set<std::int64_t>("counter", ctx.get<std::int64_t>("counter") + 1);
      });
}

TEST(DsdRuntimeTest, DeltaTransfersShrinkTrafficDramatically) {
  const auto run = [](ProtocolKind protocol) {
    Cluster cluster(dsd_config(protocol));
    const ClassId cls = cluster.define_class(sparse_class(4096));
    const ObjectId obj = cluster.create_object(cls, NodeId(0));
    std::uint64_t deltas = 0;
    // Ping-pong between two nodes: after warmup every transfer is exactly
    // one version behind -> pure delta traffic under DSD.
    for (int i = 0; i < 20; ++i) {
      const TxnResult r = cluster.run_root(obj, "bump", NodeId(1 + i % 2));
      EXPECT_TRUE(r.committed);
      deltas += r.delta_pages;
    }
    EXPECT_EQ(cluster.peek<std::int64_t>(obj, "counter"), 20);
    return std::pair(cluster.stats().total().bytes, deltas);
  };

  const auto [lotec_bytes, lotec_deltas] = run(ProtocolKind::kLotec);
  const auto [dsd_bytes, dsd_deltas] = run(ProtocolKind::kLotecDsd);
  EXPECT_EQ(lotec_deltas, 0u);
  EXPECT_GT(dsd_deltas, 10u);
  // An 8-byte change per 4 KB page: DSD should cut bytes by several times.
  EXPECT_LT(dsd_bytes * 3, lotec_bytes);
}

TEST(DsdRuntimeTest, ShortGapsAreServedFromTheDeltaHistory) {
  Cluster cluster(dsd_config(ProtocolKind::kLotecDsd));
  const ClassId cls = cluster.define_class(sparse_class(4096));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  // Node 1 commits twice; node 2's copy is then two versions behind, which
  // the bounded delta history still covers.
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(2)).committed);  // warm 2
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  const TxnResult r = cluster.run_root(obj, "bump", NodeId(2));
  ASSERT_TRUE(r.committed);
  EXPECT_GE(r.delta_pages, 1u);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "counter"), 4);
}

TEST(DsdRuntimeTest, FallsBackToFullPagesBeyondTheHistory) {
  Cluster cluster(dsd_config(ProtocolKind::kLotecDsd));
  const ClassId cls = cluster.define_class(sparse_class(4096));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(2)).committed);  // warm 2
  // kDeltaHistory + 1 commits elsewhere: node 2's copy falls off the chain.
  for (std::size_t i = 0; i < kDeltaHistory + 1; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  const TxnResult r = cluster.run_root(obj, "bump", NodeId(2));
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.delta_pages, 0u);  // history exhausted: full page
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "counter"),
            static_cast<std::int64_t>(kDeltaHistory) + 3);
}

TEST(DsdRuntimeTest, EquivalentFinalStateToLotec) {
  WorkloadSpec spec;
  spec.num_objects = 10;
  spec.min_pages = 2;
  spec.max_pages = 6;
  spec.num_transactions = 80;
  spec.contention_theta = 0.7;
  spec.seed = 92;
  const Workload workload(spec);

  const auto state_of = [&](ProtocolKind protocol) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.page_size = 256;
    cfg.protocol = protocol;
    cfg.seed = 3;
    Cluster cluster(cfg);
    const auto results = cluster.execute(workload.instantiate(cluster));
    for (const auto& r : results) EXPECT_TRUE(r.committed);
    EXPECT_TRUE(validate_quiescent(cluster).empty());
    std::vector<std::int64_t> state;
    for (std::size_t i = 0; i < workload.num_objects(); ++i) {
      const ObjectId id(i);
      const ClassDef& cls = cluster.class_def(cluster.meta_of(id).cls);
      for (std::size_t a = 0; a < cls.layout().num_attributes(); ++a)
        state.push_back(cluster.peek<std::int64_t>(
            id, cls.layout()
                    .attribute(AttrId(static_cast<std::uint32_t>(a)))
                    .name));
    }
    return state;
  };
  EXPECT_EQ(state_of(ProtocolKind::kLotec),
            state_of(ProtocolKind::kLotecDsd));
}

TEST(DsdRuntimeTest, DsdNeverExceedsLotecPayload) {
  WorkloadSpec spec;
  spec.num_objects = 12;
  spec.min_pages = 2;
  spec.max_pages = 6;
  spec.num_transactions = 100;
  spec.contention_theta = 0.8;
  spec.touched_attr_fraction = 0.3;
  spec.seed = 93;
  const Workload workload(spec);
  ExperimentOptions options;
  options.nodes = 4;
  options.page_size = 1024;
  const auto results = run_protocol_suite(
      workload, {ProtocolKind::kLotec, ProtocolKind::kLotecDsd}, options);
  EXPECT_EQ(results[0].committed, results[1].committed);
  EXPECT_LE(results[1].total.bytes, results[0].total.bytes);
  EXPECT_GT(results[1].counter("page.delta"), 0u);
}

TEST(PerClassProtocolTest, ClassesOverrideTheClusterDefault) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.protocol = ProtocolKind::kCotec;  // cluster default: the baseline
  cfg.page_size = 4096;
  cfg.seed = 94;
  Cluster cluster(cfg);

  ClassBuilder fat = sparse_class(4096);
  const ClassId cotec_cls = cluster.define_class(fat);

  ClassBuilder lean("SparseDsd", 4096);
  lean.attribute("counter", 8)
      .attribute("pad", 4096)
      .protocol(static_cast<std::uint8_t>(ProtocolKind::kLotecDsd))
      .method("bump", {"counter"}, {"counter"}, [](MethodContext& ctx) {
        ctx.set<std::int64_t>("counter",
                              ctx.get<std::int64_t>("counter") + 1);
      });
  const ClassId dsd_cls = cluster.define_class(lean);

  const ObjectId plain = cluster.create_object(cotec_cls, NodeId(0));
  const ObjectId dsd = cluster.create_object(dsd_cls, NodeId(0));
  EXPECT_EQ(cluster.meta_of(plain).protocol, ProtocolKind::kCotec);
  EXPECT_EQ(cluster.meta_of(dsd).protocol, ProtocolKind::kLotecDsd);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.run_root(plain, "bump", NodeId(1 + i % 2)).committed);
    ASSERT_TRUE(cluster.run_root(dsd, "bump", NodeId(1 + i % 2)).committed);
  }
  EXPECT_EQ(cluster.peek<std::int64_t>(plain, "counter"), 10);
  EXPECT_EQ(cluster.peek<std::int64_t>(dsd, "counter"), 10);
  // The COTEC-governed object moved whole objects every time; the DSD one
  // moved deltas: per-object traffic must differ by a wide margin.
  EXPECT_GT(cluster.stats().by_object(plain).bytes,
            4 * cluster.stats().by_object(dsd).bytes);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

TEST(PerClassProtocolTest, OutOfRangeOverrideRejected) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  Cluster cluster(cfg);
  ClassBuilder bad("Bad", 64);
  bad.attribute("v", 8).protocol(99).method(
      "m", {}, {"v"},
      [](MethodContext& ctx) { ctx.set<std::int64_t>("v", 1); });
  const ClassId cls = cluster.define_class(bad);
  EXPECT_THROW(cluster.create_object(cls), UsageError);
}

}  // namespace
}  // namespace lotec
