// Message batching (NetworkConfig::batch_messages) is a physical-only
// optimisation: the logical ledgers — totals, per-kind, per-object — must be
// bit-identical whether the knob is on or off, while the physical frame
// count drops whenever directory rounds coalesce.  These tests pin that
// contract on a real workload, and run the schedule checker's oracles over
// batched schedules to show the protocol semantics are untouched.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "check/checker.hpp"
#include "sim/experiment.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

WorkloadSpec batching_spec() {
  // Multi-object families under contention: root release batches span
  // several objects whose directory homes collide, which is what gives the
  // release/replica-sync rounds something to coalesce.
  WorkloadSpec spec;
  spec.num_objects = 24;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.num_transactions = 60;
  spec.max_depth = 3;
  spec.child_probability = 0.7;
  spec.max_children = 3;
  spec.contention_theta = 0.9;
  spec.seed = 404;
  return spec;
}

struct RunLedger {
  TrafficCounter total;
  TrafficCounter physical;
  std::uint64_t joins = 0;
  std::array<TrafficCounter, static_cast<std::size_t>(MessageKind::kNumKinds)>
      by_kind;
  std::size_t committed = 0;
};

RunLedger run_once(bool batching, bool replicate_gdo) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 10;
  cfg.net.batch_messages = batching;
  cfg.gdo.replicate = replicate_gdo;
  Cluster cluster(cfg);
  const Workload workload(batching_spec());
  RunLedger ledger;
  for (const auto& r : cluster.execute(workload.instantiate(cluster)))
    ledger.committed += r.committed ? 1 : 0;
  const NetworkStats& stats = cluster.stats();
  ledger.total = stats.total();
  ledger.physical = stats.physical();
  ledger.joins = stats.batched_joins();
  for (std::size_t k = 0; k < ledger.by_kind.size(); ++k)
    ledger.by_kind[k] = stats.by_kind(static_cast<MessageKind>(k));
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
  return ledger;
}

TEST(BatchingTest, KnobOffPhysicalLedgerEqualsLogical) {
  const RunLedger off = run_once(/*batching=*/false, /*replicate_gdo=*/false);
  EXPECT_EQ(off.joins, 0u);
  EXPECT_EQ(off.physical.messages, off.total.messages);
  EXPECT_EQ(off.physical.bytes, off.total.bytes);
}

TEST(BatchingTest, KnobOnKeepsLogicalCountersIdenticalAndCutsFrames) {
  const RunLedger off = run_once(/*batching=*/false, /*replicate_gdo=*/true);
  const RunLedger on = run_once(/*batching=*/true, /*replicate_gdo=*/true);

  // Same schedule, same outcomes, same logical traffic — bit for bit.
  EXPECT_EQ(on.committed, off.committed);
  EXPECT_EQ(on.total.messages, off.total.messages);
  EXPECT_EQ(on.total.bytes, off.total.bytes);
  for (std::size_t k = 0; k < off.by_kind.size(); ++k) {
    EXPECT_EQ(on.by_kind[k].messages, off.by_kind[k].messages)
        << to_string(static_cast<MessageKind>(k));
    EXPECT_EQ(on.by_kind[k].bytes, off.by_kind[k].bytes)
        << to_string(static_cast<MessageKind>(k));
  }

  // And a physically cheaper wire: every join is one frame (and most of a
  // header) saved.
  EXPECT_GT(on.joins, 0u);
  EXPECT_EQ(on.physical.messages + on.joins, on.total.messages);
  EXPECT_LT(on.physical.messages, on.total.messages);
  EXPECT_LT(on.physical.bytes, on.total.bytes);
}

TEST(BatchingTest, BatchingRejectsFaultInjection) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.net.batch_messages = true;
  cfg.fault.drop_probability = 0.1;
  EXPECT_THROW(cfg.validate(), UsageError);
}

TEST(BatchingTest, CheckerOraclesStayGreenOverBatchedSchedules) {
  check::CheckOptions opts;
  opts.scenario = check::check_tiny();
  opts.batch_messages = true;
  opts.mode = check::ExploreMode::kRandom;
  opts.max_schedules = 40;
  opts.minimize = false;
  check::ScheduleChecker checker(opts);
  const check::CheckReport report = checker.run();
  EXPECT_EQ(report.schedules_run, 40u);
  EXPECT_EQ(report.schedules_with_errors, 0u);
  EXPECT_FALSE(report.violation.has_value()) << report.summary();
}

}  // namespace
}  // namespace lotec
