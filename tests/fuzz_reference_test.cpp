// Reference-model fuzzing: ObjectImage byte access and nested UndoLog
// behaviour are checked against trivially correct models (a flat byte
// array; an explicit snapshot stack) over thousands of random operations.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/rng.hpp"
#include "page/undo_log.hpp"

namespace lotec {
namespace {

class ImageFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImageFuzzTest, RandomReadsWritesMatchFlatArray) {
  constexpr std::size_t kPages = 7;
  constexpr std::uint32_t kPageSize = 48;  // odd-ish size, many straddles
  constexpr std::size_t kBytes = kPages * kPageSize;

  ObjectImage img(ObjectId(1), kPages, kPageSize);
  img.materialize_all();
  std::vector<std::byte> model(kBytes, std::byte{0});
  Rng rng(GetParam());

  for (int step = 0; step < 3000; ++step) {
    const std::size_t offset = rng.below(kBytes);
    const std::size_t len = 1 + rng.below(std::min<std::size_t>(
                                    kBytes - offset, 100));
    if (rng.chance(0.5)) {
      std::vector<std::byte> data(len);
      for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
      img.write_bytes(offset, data);
      std::memcpy(model.data() + offset, data.data(), len);
    } else {
      std::vector<std::byte> got(len);
      img.read_bytes(offset, got);
      EXPECT_EQ(0, std::memcmp(got.data(), model.data() + offset, len))
          << "step " << step << " offset " << offset << " len " << len;
    }
  }
  // Dirty bits cover exactly the written pages.
  std::vector<std::byte> full(kBytes);
  img.read_bytes(0, full);
  EXPECT_EQ(0, std::memcmp(full.data(), model.data(), kBytes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

/// Nested-transaction undo fuzz: a stack of scopes (root..leaf).  Entering
/// a scope snapshots nothing in the model but opens a fresh UndoLog; random
/// writes are captured; leaving a scope either pre-commits (absorb into
/// parent) or aborts (undo; the model restores its snapshot).  At every
/// abort the image must equal the model snapshot taken at scope entry.
class UndoFuzzTest
    : public ::testing::TestWithParam<std::tuple<UndoStrategy,
                                                 std::uint64_t>> {};

TEST_P(UndoFuzzTest, NestedScopesRestoreExactly) {
  const auto [strategy, seed] = GetParam();
  constexpr std::size_t kPages = 4;
  constexpr std::uint32_t kPageSize = 64;
  constexpr std::size_t kBytes = kPages * kPageSize;

  ObjectImage img(ObjectId(1), kPages, kPageSize);
  img.materialize_all();
  const auto resolve = [&](ObjectId) -> ObjectImage& { return img; };
  const auto snapshot = [&] {
    std::vector<std::byte> s(kBytes);
    img.read_bytes(0, s);
    return s;
  };

  Rng rng(seed);
  struct Scope {
    UndoLog log;
    std::vector<std::byte> entry_state;
  };
  std::vector<Scope> scopes;
  scopes.push_back({UndoLog(strategy), snapshot()});  // root

  for (int step = 0; step < 1500; ++step) {
    const int op = static_cast<int>(rng.below(4));
    if (op == 0 && scopes.size() < 6) {
      scopes.push_back({UndoLog(strategy), snapshot()});
    } else if (op == 1 && scopes.size() > 1) {
      // Pre-commit the deepest scope into its parent.
      Scope child = std::move(scopes.back());
      scopes.pop_back();
      scopes.back().log.absorb(std::move(child.log));
    } else if (op == 2 && scopes.size() > 1) {
      // Abort the deepest scope: its entry state must return exactly.
      Scope child = std::move(scopes.back());
      scopes.pop_back();
      child.log.undo(resolve);
      EXPECT_EQ(snapshot(), child.entry_state) << "step " << step;
    } else {
      // Random write captured in the current scope.
      const std::size_t offset = rng.below(kBytes);
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(kBytes - offset, 64));
      std::vector<std::byte> data(len);
      for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
      scopes.back().log.before_write(img, offset, len);
      img.write_bytes(offset, data);
    }
  }
  // Finally abort everything outstanding, leaf to root: back to all-zero.
  while (!scopes.empty()) {
    scopes.back().log.undo(resolve);
    const auto expected = scopes.back().entry_state;
    EXPECT_EQ(snapshot(), expected);
    scopes.pop_back();
  }
  const std::vector<std::byte> zero(kBytes, std::byte{0});
  EXPECT_EQ(snapshot(), zero);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, UndoFuzzTest,
    ::testing::Combine(::testing::Values(UndoStrategy::kByteRange,
                                         UndoStrategy::kShadowPage),
                       ::testing::Values(7, 13, 29)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == UndoStrategy::kByteRange
                             ? "ByteRange"
                             : "ShadowPage") +
             "_" + std::to_string(std::get<1>(info.param));
    });

class PageSetFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageSetFuzzTest, MatchesStdSet) {
  constexpr std::size_t kUniverse = 130;
  PageSet ps(kUniverse);
  std::set<std::uint32_t> model;
  Rng rng(GetParam());
  for (int step = 0; step < 4000; ++step) {
    const auto p = static_cast<std::uint32_t>(rng.below(kUniverse));
    switch (rng.below(3)) {
      case 0:
        ps.insert(PageIndex(p));
        model.insert(p);
        break;
      case 1:
        ps.erase(PageIndex(p));
        model.erase(p);
        break;
      default:
        EXPECT_EQ(ps.contains(PageIndex(p)), model.count(p) == 1);
    }
    if (step % 97 == 0) {
      EXPECT_EQ(ps.count(), model.size());
      const auto v = ps.to_vector();
      ASSERT_EQ(v.size(), model.size());
      auto it = model.begin();
      for (const PageIndex q : v) EXPECT_EQ(q.value(), *it++);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageSetFuzzTest, ::testing::Values(3, 5, 8));

}  // namespace
}  // namespace lotec
