// Observability layer: MetricsRegistry semantics, span tracer nesting and
// determinism, the JSONL / Chrome-trace serializations, and the golden
// span-tree properties of the fig2 scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

TEST(MetricsRegistryTest, CountersAreRegisteredOnceAndQueriedByName) {
  MetricsRegistry registry;
  MetricsCounter& a = registry.counter("net.round_trips");
  a.add();
  a.add(4);
  // Same name -> same handle.
  EXPECT_EQ(&registry.counter("net.round_trips"), &a);
  EXPECT_EQ(registry.value("net.round_trips"), 5u);
  EXPECT_EQ(registry.value("never.registered"), 0u);

  registry.counter("txn.deadlock_retries").add(2);
  const auto snapshot = registry.counters();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("net.round_trips"), 5u);
  EXPECT_EQ(snapshot.at("txn.deadlock_retries"), 2u);

  registry.reset();
  EXPECT_EQ(registry.value("net.round_trips"), 0u);
  // Registration survives a reset.
  EXPECT_EQ(registry.counters().size(), 2u);
}

TEST(MetricsRegistryTest, HistogramTracksCountSumExtremesAndPercentiles) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.histogram("span.lock.acquire");
  for (const std::uint64_t v : {1u, 2u, 4u, 8u, 100u}) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 115u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.mean(), 23.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100), 100.0);
  EXPECT_LE(snap.percentile(50), snap.percentile(95));

  const auto all = registry.histograms();
  ASSERT_TRUE(all.contains("span.lock.acquire"));
  EXPECT_EQ(all.at("span.lock.acquire").count, 5u);

  const HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
}

TEST(MetricsRegistryTest, PercentileIsTotalOnAnyInput) {
  // An empty histogram yields 0.0 for EVERY p — including NaN and values
  // far outside [0, 100]; a populated one clamps out-of-range p and maps
  // NaN to 0.0.  Never NaN out, never UB (std::clamp on NaN is UB).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(-40), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1e9), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(nan), 0.0);

  MetricsRegistry registry;
  LatencyHistogram& h = registry.histogram("span.any");
  for (const std::uint64_t v : {3u, 5u, 9u}) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(-10), snap.percentile(0));
  EXPECT_DOUBLE_EQ(snap.percentile(250), snap.percentile(100));
  EXPECT_DOUBLE_EQ(snap.percentile(nan), 0.0);
  EXPECT_FALSE(std::isnan(snap.percentile(nan)));
}

TEST(SpanTracerTest, DisabledTracerRecordsNothingAndHoldsTheClock) {
  SpanTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.tick_message();
  EXPECT_EQ(tracer.now(), 0u);
  EXPECT_EQ(tracer.begin(SpanPhase::kLockAcquire, 1, 0), 0u);
  tracer.instant(SpanPhase::kFaultEvent, 0, 0);
  { ScopedSpan s(&tracer, SpanPhase::kMethodExecute, 1, 0); }
  { ScopedSpan s(nullptr, SpanPhase::kMethodExecute, 1, 0); }
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(SpanTracerTest, SpansNestPerFamilyLaneWithIncreasingTicks) {
  SpanTracer tracer;
  MetricsRegistry registry;
  tracer.set_registry(&registry);
  tracer.add_sink(std::make_unique<InMemorySink>());
  tracer.enable();

  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 7, 2);
  tracer.tick_message();
  const std::uint64_t inner =
      tracer.begin(SpanPhase::kLockAcquire, 7, 2, /*object=*/11);
  // A different family lane opens independently.
  const std::uint64_t other = tracer.begin(SpanPhase::kFamilyAttempt, 8, 3);
  tracer.instant(SpanPhase::kLockInherit, 7, 2, 11);
  tracer.end(inner, 7);
  tracer.end(outer, 7);
  tracer.end(other, 8);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);  // 2 nested + 1 other-lane + 1 instant

  std::map<std::uint64_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) by_id[s.id] = s;
  EXPECT_EQ(by_id.at(outer).parent, 0u);
  EXPECT_EQ(by_id.at(inner).parent, outer);
  EXPECT_EQ(by_id.at(other).parent, 0u);  // different lane: not nested
  EXPECT_EQ(by_id.at(inner).object, 11u);
  EXPECT_EQ(by_id.at(inner).node, 2u);

  // Child contained in parent; every edge consumed a distinct tick.
  EXPECT_GT(by_id.at(inner).begin, by_id.at(outer).begin);
  EXPECT_LT(by_id.at(inner).end, by_id.at(outer).end);
  EXPECT_LT(by_id.at(inner).begin, by_id.at(inner).end);

  // The instant rode the open lock.acquire span.
  const auto instant =
      std::find_if(spans.begin(), spans.end(), [](const SpanRecord& s) {
        return s.phase == SpanPhase::kLockInherit;
      });
  ASSERT_NE(instant, spans.end());
  EXPECT_EQ(instant->parent, inner);
  EXPECT_EQ(instant->begin, instant->end);

  // Span durations fed the per-phase histograms.
  const auto hists = registry.histograms();
  EXPECT_EQ(hists.at("span.family.attempt").count, 2u);
  EXPECT_EQ(hists.at("span.lock.acquire").count, 1u);
}

TEST(SpanTracerTest, EndingAnOuterSpanClosesAbandonedChildren) {
  // Exception unwinding destroys ScopedSpans in LIFO order, but a child
  // whose end() was never reached must still be closed when the parent
  // ends — the tracer pops the lane stack down to the matching id.
  SpanTracer tracer;
  tracer.enable();
  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 1, 0);
  (void)tracer.begin(SpanPhase::kLockAcquire, 1, 0);
  (void)tracer.begin(SpanPhase::kGdoRound, 1, 0);
  tracer.end(outer, 1);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (const SpanRecord& s : spans) EXPECT_LE(s.begin, s.end);
}

TEST(SpanSerializationTest, JsonlRoundTripPreservesEveryField) {
  SpanTracer tracer;
  tracer.enable();
  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 3, 1);
  const std::uint64_t inner = tracer.begin(SpanPhase::kPageGather, 3, 1, 42);
  tracer.instant(SpanPhase::kFaultEvent, 0, 2);  // directory lane, no object
  tracer.end(inner, 3);
  tracer.end(outer, 3);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);

  std::stringstream ss;
  write_spans_jsonl(spans, ss);
  const auto parsed = load_spans_jsonl(ss);
  EXPECT_EQ(parsed, spans);
}

TEST(SpanSerializationTest, JsonlLoaderRejectsMalformedInput) {
  {
    std::stringstream ss("{\"id\":1,\"parent\":0}\n");  // missing fields
    EXPECT_THROW((void)load_spans_jsonl(ss), std::runtime_error);
  }
  {
    std::stringstream ss(
        "{\"id\":1,\"parent\":0,\"phase\":\"not.a.phase\",\"family\":1,"
        "\"node\":0,\"begin\":1,\"end\":2}\n");
    EXPECT_THROW((void)load_spans_jsonl(ss), std::runtime_error);
  }
}

TEST(SpanSerializationTest, JsonEscapeNeutralizesHostileStrings) {
  // Quotes, backslashes, control characters, embedded newlines: whatever
  // lands in a name, the emitted document must stay structurally valid.
  const std::string hostile_cases[] = {
      "plain",
      "with \"quotes\" inside",
      "back\\slash",
      std::string("nul\0byte", 8),
      "newline\nand\ttab\rand\x01\x1f controls",
      "trailing backslash\\",
      "}]\",\"injected\":\"x",  // attempts to escape the string literal
  };
  for (const std::string& s : hostile_cases) {
    const std::string escaped = json_escape(s);
    // No raw control characters or unescaped quotes survive.
    for (const char c : escaped)
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    const std::string doc = "{\"k\":\"" + escaped + "\"}";
    EXPECT_TRUE(json_wellformed(doc)) << "hostile input: " << s;
  }
  EXPECT_FALSE(json_wellformed("{\"k\":\"unterminated"));
  EXPECT_FALSE(json_wellformed("{\"k\":1"));
}

TEST(SpanSerializationTest, ObsStreamRoundTripsSpansAndMessages) {
  // The full observability stream — span lines interleaved with "msg"
  // lines — re-parses into the identical records, causal fields included.
  SpanTracer tracer;
  tracer.enable();
  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 9, 2);
  TraceContext ctx = tracer.current_context();
  tracer.note_message("LockAcquireRequest", 2, 0, 17, 96, ctx);
  const std::uint64_t serve =
      tracer.begin_remote(SpanPhase::kGdoServe, 0, ctx, 17);
  tracer.end(serve, 0);
  tracer.note_message("LockAcquireGrant", 0, 2, 17, 64, ctx);
  tracer.end(outer, 9);

  const auto spans = tracer.spans();
  const auto messages = tracer.messages();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(messages.size(), 2u);
  // The serve span carries the causal fields the round trip must keep.
  const SpanRecord& s = spans.front();
  EXPECT_EQ(s.phase, SpanPhase::kGdoServe);
  EXPECT_NE(s.trace, 0u);
  EXPECT_EQ(s.link, outer);

  std::stringstream ss;
  for (const SpanRecord& span : spans) write_span_jsonl(span, ss);
  for (const MessageRecord& m : messages) write_message_jsonl(m, ss);
  for (std::string line; std::getline(ss, line);)
    EXPECT_TRUE(json_wellformed(line)) << line;
  ss.clear();
  ss.seekg(0);

  std::vector<SpanRecord> spans_back;
  std::vector<MessageRecord> messages_back;
  load_obs_jsonl(ss, spans_back, messages_back);
  EXPECT_EQ(spans_back, spans);
  EXPECT_EQ(messages_back, messages);
}

TEST(SpanSerializationTest, ChromeTraceDrawsFlowArrowsForCausalLinks) {
  SpanTracer tracer;
  tracer.enable();
  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 4, 1);
  const TraceContext ctx = tracer.current_context();
  const std::uint64_t serve =
      tracer.begin_remote(SpanPhase::kGdoServe, 0, ctx, 3);
  tracer.end(serve, 0);
  tracer.end(outer, 4);

  std::stringstream ss;
  write_chrome_trace(tracer.spans(), ss);
  const std::string json = ss.str();
  EXPECT_TRUE(json_wellformed(json));
  // One flow start ("s") / finish ("f") pair, bound to the enclosing
  // slices, so Perfetto draws the cross-lane arrow.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"gdo.serve\""), std::string::npos);
}

TEST(SpanSerializationTest, ChromeTraceEmitsValidEventsAndMetadata) {
  SpanTracer tracer;
  tracer.enable();
  const std::uint64_t outer = tracer.begin(SpanPhase::kFamilyAttempt, 5, 1);
  tracer.instant(SpanPhase::kLockInherit, 5, 1, 9);
  tracer.end(outer, 5);
  tracer.instant(SpanPhase::kFaultEvent, 0, 0);  // directory lane

  std::stringstream ss;
  write_chrome_trace(tracer.spans(), ss);
  const std::string json = ss.str();

  // Schema: a traceEvents array of "M" metadata, "X" complete and "i"
  // instant events (the subset Perfetto needs).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"family.attempt\""), std::string::npos);
  // Instants carry thread scope.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // The family-0 lane is labeled as the directory.
  EXPECT_NE(json.find("\"directory\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

/// Golden span-tree test on the fig2 scenario: the traced run's span forest
/// must be non-empty, properly nested per family, deterministic across
/// reruns, and consistent with the registry counters.
TEST(SpanTracerTest, GoldenSpanTreeOnFig2Scenario) {
  const Workload workload(scenarios::medium_high_contention());
  ExperimentOptions options;
  options.trace_spans = true;
  const ScenarioResult r =
      run_scenario(workload, ProtocolKind::kLotec, options);
  ASSERT_FALSE(r.spans.empty());

  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::map<SpanPhase, std::uint64_t> phase_count;
  for (const SpanRecord& s : r.spans) {
    EXPECT_LE(s.begin, s.end);
    by_id[s.id] = &s;
    ++phase_count[s.phase];
  }
  // Ids are unique.
  EXPECT_EQ(by_id.size(), r.spans.size());

  // Every non-root span nests inside its parent, and the parent shares the
  // family lane (instants on the directory lane aside, nothing crosses).
  for (const SpanRecord& s : r.spans) {
    if (s.parent == 0) continue;
    const auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end()) << "span " << s.id << " orphaned";
    EXPECT_GE(s.begin, it->second->begin);
    EXPECT_LE(s.end, it->second->end);
    EXPECT_EQ(s.family, it->second->family);
  }

  // The phases the fig2 run must exercise.
  EXPECT_GT(phase_count[SpanPhase::kFamilyAttempt], 0u);
  EXPECT_GT(phase_count[SpanPhase::kLockAcquire], 0u);
  EXPECT_GT(phase_count[SpanPhase::kGdoRound], 0u);
  EXPECT_GT(phase_count[SpanPhase::kPageGather], 0u);
  EXPECT_GT(phase_count[SpanPhase::kMethodExecute], 0u);
  EXPECT_GT(phase_count[SpanPhase::kCommitReport], 0u);
  // No lock cache, no faults configured.
  EXPECT_EQ(phase_count[SpanPhase::kCallbackRound], 0u);
  EXPECT_EQ(phase_count[SpanPhase::kFaultEvent], 0u);

  // One attempt span per execution attempt: every commit plus every retry.
  EXPECT_EQ(phase_count[SpanPhase::kFamilyAttempt],
            r.committed + r.aborted + r.counter("txn.deadlock_retries") +
                r.counter("txn.fault_retries"));
  // One commit-report round per committed family.
  EXPECT_EQ(phase_count[SpanPhase::kCommitReport], r.committed);

  // Histograms mirror the span counts.
  ASSERT_TRUE(r.histograms.contains("span.method.execute"));
  EXPECT_EQ(r.histograms.at("span.method.execute").count,
            phase_count[SpanPhase::kMethodExecute]);

  // Deterministic: the same run produces the identical span forest.
  const ScenarioResult again =
      run_scenario(workload, ProtocolKind::kLotec, options);
  EXPECT_EQ(again.spans, r.spans);
}

TEST(SpanTracerTest, TracingIsBitIdenticalOnTheWire) {
  // The acceptance property, at unit-test scale: a traced run carries the
  // exact same message traffic as an untraced one.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 40;
  const Workload workload(spec);
  ExperimentOptions off;
  off.nodes = 8;
  off.record_trace = true;
  ExperimentOptions on = off;
  on.trace_spans = true;

  const ScenarioResult a = run_scenario(workload, ProtocolKind::kLotec, off);
  const ScenarioResult b = run_scenario(workload, ProtocolKind::kLotec, on);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_TRUE(a.spans.empty());
  EXPECT_FALSE(b.spans.empty());
}

}  // namespace
}  // namespace lotec
