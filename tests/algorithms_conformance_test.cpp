// Conformance tests for the paper's Algorithms 4.1-4.5, branch by branch.
// Each test names the algorithm line it exercises and asserts the exact
// observable behaviour (grants, queueing, page-map state, traffic).
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "txn/family.hpp"

namespace lotec {
namespace {

TxnId txn(std::uint64_t family, std::uint32_t serial = 0) {
  return TxnId{FamilyId(family), serial};
}

// ---------------------------------------------------------------------------
// Algorithm 4.1 — LocalLockAcquisition
// ---------------------------------------------------------------------------

class Algo41Test : public ::testing::Test {
 protected:
  Algo41Test() : family_(FamilyId(1), NodeId(0), UndoStrategy::kByteRange) {
    root_ = &family_.begin_root(ObjectId(100), MethodId(0));
  }
  Family family_;
  Transaction* root_;
  const ObjectId obj_{ObjectId(7)};
};

// "IF the object is not cached at this site THEN forward request to
//  GlobalLockAcquisition."
TEST_F(Algo41Test, UncachedObjectGoesGlobal) {
  EXPECT_EQ(family_.locks().try_local_acquire(*root_, obj_, LockMode::kRead),
            LocalAcquireOutcome::kNeedGlobal);
}

// "IF the lock is retained by an ancestor of the requester THEN grant the
//  lock (R or W) to the transaction."
TEST_F(Algo41Test, RetainedByAncestorGrantsBothModes) {
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  family_.locks().on_global_grant(child, obj_, LockMode::kWrite, false);
  child.pre_commit();
  family_.locks().on_pre_commit(child);  // root retains

  Transaction& reader = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(family_.locks().try_local_acquire(reader, obj_, LockMode::kRead),
            LocalAcquireOutcome::kGranted);
  // Reader done; a writer may also acquire from the retention.
  reader.pre_commit();
  family_.locks().on_pre_commit(reader);
  Transaction& writer = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(family_.locks().try_local_acquire(writer, obj_, LockMode::kWrite),
            LocalAcquireOutcome::kGranted);
}

// "ELSE /* currently locked by another transaction in the family */
//    IF request is for a Write or the lock is held for Writing THEN
//      Link transaction onto local list"  — held by an ANCESTOR, waiting
// would self-deadlock; the run-time preclusion check fires instead
// (Section 3.4's chosen semantics).
TEST_F(Algo41Test, WriteInvolvedWaitOnAncestorIsPrecluded) {
  family_.locks().on_global_grant(*root_, obj_, LockMode::kWrite, false);
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_THROW(family_.locks().try_local_acquire(child, obj_, LockMode::kRead),
               RecursiveInvocationError);  // lock held for writing
  EXPECT_THROW(
      family_.locks().try_local_acquire(child, obj_, LockMode::kWrite),
      RecursiveInvocationError);  // request is for a write
}

// "ELSE Grant the Read lock to the requesting transaction."
TEST_F(Algo41Test, ReadOverReadHolderIsGranted) {
  family_.locks().on_global_grant(*root_, obj_, LockMode::kRead, false);
  Transaction& child = family_.begin_child(*root_, obj_, MethodId(0));
  EXPECT_EQ(family_.locks().try_local_acquire(child, obj_, LockMode::kRead),
            LocalAcquireOutcome::kGranted);
}

// ---------------------------------------------------------------------------
// Algorithm 4.2 — GlobalLockAcquisition
// ---------------------------------------------------------------------------

class Algo42Test : public ::testing::Test {
 protected:
  Algo42Test() : transport_(4), gdo_(transport_) {
    gdo_.register_object(obj_, 3, NodeId(0));
  }
  Transport transport_;
  GdoService gdo_;
  const ObjectId obj_{ObjectId(1)};
};

// "IF the lock is free THEN set the lock to held ... send the list pointed
//  to by HolderPtr and the object's page map to the requesting
//  transaction's site."
TEST_F(Algo42Test, FreeLockGrantSendsHolderListAndPageMap) {
  const AcquireResult r = gdo_.acquire(obj_, txn(1), NodeId(2),
                                       LockMode::kWrite);
  EXPECT_EQ(r.status, AcquireStatus::kGranted);
  EXPECT_EQ(r.page_map.num_pages(), 3u);
  const TrafficCounter grant =
      transport_.stats().by_kind(MessageKind::kLockAcquireGrant);
  EXPECT_EQ(grant.messages, 1u);
  // Payload >= lock record + 1 holder pair + 3 page-map entries.
  EXPECT_GE(grant.bytes, wire::kHeaderBytes + wire::kLockRecordBytes +
                             wire::kTxnNodePairBytes +
                             3 * wire::kPageMapEntryBytes);
}

// "ELSE IF the lock is held for Read and this is a Read request THEN
//  /* concurrent reading is OK */ grant."
TEST_F(Algo42Test, ConcurrentReadingIsOk) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kRead);
  EXPECT_EQ(gdo_.acquire(obj_, txn(2), NodeId(2), LockMode::kRead).status,
            AcquireStatus::kGranted);
}

// "IF there is a list pointed to by NonHoldersPtr for the requesting
//  transaction's family THEN link the requesting transaction into its
//  family's list ELSE create a new list for the requester's family."
TEST_F(Algo42Test, WaiterListsArePerFamily) {
  (void)gdo_.acquire(obj_, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(2, 0), NodeId(2), LockMode::kWrite);
  (void)gdo_.acquire(obj_, txn(3, 0), NodeId(3), LockMode::kWrite);
  const GdoEntry e = gdo_.snapshot(obj_);
  ASSERT_EQ(e.waiters.size(), 2u);  // one list per waiting family
  EXPECT_EQ(e.waiters[0].family, FamilyId(2));
  EXPECT_EQ(e.waiters[0].txns.size(), 1u);
  EXPECT_EQ(e.waiters[1].family, FamilyId(3));
}

// ---------------------------------------------------------------------------
// Algorithm 4.3 — LocalLockRelease (runtime-level, via a real cluster)
// ---------------------------------------------------------------------------

// "CASE sub-transaction pre-commits: ... release lock to parent transaction
//  for retaining" — verified via the family lock table in
// family_lock_table_test.cpp; here the end-to-end effect: the next family
// only gets the object after the ROOT commits, not when the sub-txn does.
TEST(Algo43Test, LocksReleaseToOtherFamiliesOnlyAtRootCommit) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  cfg.seed = 3;
  Cluster cluster(cfg);
  const ClassId cell = cluster.define_class(
      ClassBuilder("Cell", 64).attribute("v", 8).method(
          "bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId x = cluster.create_object(cell, NodeId(0));

  // Driver bumps x via a sub-transaction, then (after the child
  // pre-committed) checks the GDO: the family must STILL hold x.
  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", 64).attribute("pad", 8).method(
          "run", {}, {}, [x, &cluster](MethodContext& ctx) {
            ASSERT_TRUE(ctx.invoke(x, "bump"));  // child pre-commits
            const GdoEntry e = cluster.gdo().snapshot(x);
            EXPECT_TRUE(e.held_by(ctx.txn().family))
                << "pre-commit must retain, not release, the lock";
          }));
  const ObjectId d = cluster.create_object(driver, NodeId(1));
  ASSERT_TRUE(cluster.run_root(d, "run", NodeId(1)).committed);
  // After the root committed, the lock is free.
  EXPECT_EQ(cluster.gdo().snapshot(x).state, GdoLockState::kFree);
}

// "CASE sub-transaction aborts: UNDO updates ... ELSE /* not retained by an
//  ancestor */ forward request to GlobalLockRelease /* no dirty page
//  info */" — an aborted child's object becomes available to other
// families immediately, with its page map untouched.
TEST(Algo43Test, AbortedSubTxnReleasesUnretainedLockWithoutDirtyInfo) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  cfg.seed = 3;
  Cluster cluster(cfg);
  const ClassId cell = cluster.define_class(
      ClassBuilder("Cell", 64).attribute("v", 8).method(
          "doomed", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", 999);
            ctx.abort();
          }));
  const ObjectId x = cluster.create_object(cell, NodeId(0));
  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", 64).attribute("done", 8).method(
          "run", {"done"}, {"done"}, [x, &cluster](MethodContext& ctx) {
            EXPECT_FALSE(ctx.invoke(x, "doomed"));
            // Child aborted and nothing retains x: released immediately,
            // even though OUR root is still running.
            const GdoEntry e = cluster.gdo().snapshot(x);
            EXPECT_EQ(e.state, GdoLockState::kFree);
            EXPECT_EQ(e.version_counter, 0u);  // "no dirty page info"
            ctx.set<std::int64_t>("done", 1);
          }));
  const ObjectId d = cluster.create_object(driver, NodeId(1));
  ASSERT_TRUE(cluster.run_root(d, "run", NodeId(1)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(x, "v"), 0);  // UNDO ran
}

// ---------------------------------------------------------------------------
// Algorithm 4.4 — GlobalLockRelease
// ---------------------------------------------------------------------------

// "Record the NodeIdentifier of the updating site in the GDO for each
//  updated page" + "unlink the next transaction list from NonHoldersPtr
//  and link onto HolderPtr; send the list ... and the page map to the new
//  holder's site."
TEST(Algo44Test, ReleaseRecordsUpdatersAndPromotesNextFamily) {
  Transport transport(4);
  GdoService gdo(transport);
  const ObjectId obj(1);
  gdo.register_object(obj, 2, NodeId(0));
  (void)gdo.acquire(obj, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo.acquire(obj, txn(2), NodeId(2), LockMode::kWrite);

  ReleaseInfo info;
  info.dirty = PageSet(2);
  info.dirty.insert(PageIndex(1));
  const ReleaseResult r =
      gdo.release_family(obj, FamilyId(1), NodeId(1), &info);

  const GdoEntry e = gdo.snapshot(obj);
  EXPECT_EQ(e.page_map.at(PageIndex(1)).node, NodeId(1));  // updater recorded
  EXPECT_EQ(e.page_map.at(PageIndex(0)).node, NodeId(0));  // untouched page
  ASSERT_EQ(r.wakeups.size(), 1u);
  EXPECT_EQ(r.wakeups[0].family, FamilyId(2));             // promoted
  EXPECT_EQ(r.wakeups[0].page_map.at(PageIndex(1)).node, NodeId(1));
  EXPECT_TRUE(e.held_by(FamilyId(2)));
  EXPECT_GE(transport.stats().by_kind(MessageKind::kLockGrantWakeup).bytes,
            wire::kHeaderBytes + wire::kLockRecordBytes +
                2 * wire::kPageMapEntryBytes);
}

// "IF no other transaction is waiting for the lock THEN set LockState to
//  `Free' and HolderPtr to NULL."
TEST(Algo44Test, NoWaitersMeansFree) {
  Transport transport(2);
  GdoService gdo(transport);
  const ObjectId obj(1);
  gdo.register_object(obj, 1, NodeId(0));
  (void)gdo.acquire(obj, txn(1), NodeId(1), LockMode::kWrite);
  (void)gdo.release_family(obj, FamilyId(1), NodeId(1), nullptr);
  const GdoEntry e = gdo.snapshot(obj);
  EXPECT_EQ(e.state, GdoLockState::kFree);
  EXPECT_TRUE(e.holders.empty());
}

// ---------------------------------------------------------------------------
// Algorithm 4.5 — TransferOfUpdatedPages ("collect parts from several
// nodes"): the acquiring site groups wanted pages per owning site and
// fetches each group with one request/reply exchange.
// ---------------------------------------------------------------------------

TEST(Algo45Test, ScatteredPagesAreGatheredPerSourceSite) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 64;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 3;
  Cluster cluster(cfg);
  // Three pages, one writer method per page.
  ClassBuilder b("Scatter", 64);
  b.attribute("p0", 64).attribute("p1", 64).attribute("p2", 64);
  for (int i = 0; i < 3; ++i) {
    const std::string a = "p" + std::to_string(i);
    b.method("w" + std::to_string(i), {a}, {a}, [a](MethodContext& ctx) {
      ctx.set<std::int64_t>(a, ctx.get<std::int64_t>(a) + 1);
    });
  }
  b.method("read_all", {"p0", "p1", "p2"}, {}, [](MethodContext& ctx) {
    (void)ctx.get<std::int64_t>("p0");
    (void)ctx.get<std::int64_t>("p1");
    (void)ctx.get<std::int64_t>("p2");
  });
  const ObjectId obj = cluster.create_object(cluster.define_class(b),
                                             NodeId(0));
  // Scatter the newest pages over nodes 1 and 2 (page 2 stays at 0).
  ASSERT_TRUE(cluster.run_root(obj, "w0", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(obj, "w1", NodeId(2)).committed);

  const auto fetches_before =
      cluster.stats().by_kind(MessageKind::kPageFetchRequest).messages;
  const TxnResult r = cluster.run_root(obj, "read_all", NodeId(3));
  ASSERT_TRUE(r.committed);
  const auto fetch_msgs =
      cluster.stats().by_kind(MessageKind::kPageFetchRequest).messages -
      fetches_before;
  // Node 3 needed pages from three distinct sites: 0 (page 2, never
  // updated), 1 (page 0) and 2 (page 1) -> exactly three gather requests.
  EXPECT_EQ(fetch_msgs, 3u);
  EXPECT_EQ(r.pages_fetched, 3u);
}

}  // namespace
}  // namespace lotec
