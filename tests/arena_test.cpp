// Arena correctness: alignment, reset-reuse, block growth, adopt()
// pointer stability, and the ArenaAllocator/ArenaVector adapters.  The
// arena backs undo-record byte images and per-attempt scratch, so pointer
// stability across adopt() (child undo absorbed into parent) is the
// protocol-critical property.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace lotec {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.allocate(i + 1, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align << " i=" << i;
    }
  }
  // Typed helpers honour the type's alignment.
  struct alignas(32) Wide {
    double d[4];
  };
  Wide* w = arena.allocate_array<Wide>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(64);  // tiny first block forces refills
  std::vector<std::byte*> ptrs;
  for (int i = 0; i < 200; ++i) {
    auto* p = static_cast<std::byte*>(arena.allocate(16, 8));
    std::memset(p, i & 0xff, 16);
    ptrs.push_back(p);
  }
  // Every allocation retains its fill pattern: no overlap, no corruption on
  // refill.
  for (int i = 0; i < 200; ++i)
    for (int b = 0; b < 16; ++b)
      ASSERT_EQ(std::to_integer<int>(ptrs[i][b]), i & 0xff) << i;
}

TEST(ArenaTest, ResetReusesBlocks) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  const std::size_t cap_after_warmup = arena.capacity_bytes();
  EXPECT_GT(cap_after_warmup, 0u);

  for (int attempt = 0; attempt < 50; ++attempt) {
    arena.reset();
    EXPECT_EQ(arena.allocated_bytes(), 0u);
    for (int i = 0; i < 100; ++i) (void)arena.allocate(64, 8);
  }
  // Steady state: reset + same-scale refill allocates nothing new.  The
  // first post-warmup reset may consolidate into the largest block, so
  // allow one extra refill block, then demand stability.
  EXPECT_LE(arena.capacity_bytes(), cap_after_warmup * 2)
      << "reset() must recycle blocks, not leak them";
}

TEST(ArenaTest, MakeConstructsObjects) {
  Arena arena;
  struct Record {
    std::uint64_t a;
    std::uint32_t b;
  };
  Record* r = arena.make<Record>(Record{7, 9});
  EXPECT_EQ(r->a, 7u);
  EXPECT_EQ(r->b, 9u);
}

TEST(ArenaTest, CopyBytesProducesStableCopy) {
  Arena arena;
  std::vector<std::byte> src(100);
  for (int i = 0; i < 100; ++i) src[i] = std::byte(i);
  std::byte* copy = arena.copy_bytes(src.data(), src.size());
  src.assign(100, std::byte{0});  // clobber the source
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(std::to_integer<int>(copy[i]), i);
}

TEST(ArenaTest, AdoptKeepsPointersValid) {
  // The UndoLog::absorb path: records created in the child's arena must
  // stay addressable after the child arena is spliced into the parent and
  // the child is reset/reused.
  Arena parent;
  std::vector<std::byte*> adopted_ptrs;
  for (int round = 0; round < 5; ++round) {
    Arena child(256);
    for (int i = 0; i < 50; ++i) {
      auto* p = static_cast<std::byte*>(child.allocate(32, 8));
      std::memset(p, round * 50 + i, 32);
      adopted_ptrs.push_back(p);
    }
    parent.adopt(std::move(child));
    // Child is reusable after adopt and its new allocations are disjoint.
    for (int i = 0; i < 10; ++i) std::memset(child.allocate(32, 8), 0xEE, 32);
  }
  for (std::size_t i = 0; i < adopted_ptrs.size(); ++i)
    for (int b = 0; b < 32; ++b)
      ASSERT_EQ(std::to_integer<int>(adopted_ptrs[i][b]),
                static_cast<int>(i) & 0xff)
          << "adopted allocation corrupted";
  // And the parent keeps allocating without touching adopted bytes.
  for (int i = 0; i < 100; ++i) std::memset(parent.allocate(64, 8), 0xAB, 64);
  for (std::size_t i = 0; i < adopted_ptrs.size(); ++i)
    ASSERT_EQ(std::to_integer<int>(adopted_ptrs[i][0]),
              static_cast<int>(i) & 0xff);
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, LargeAllocationExceedingBlockSize) {
  Arena arena(64);
  auto* p = static_cast<std::byte*>(arena.allocate(10000, 16));
  std::memset(p, 0x5A, 10000);
  EXPECT_EQ(std::to_integer<int>(p[9999]), 0x5A);
}

TEST(ArenaVectorTest, GrowsAndDestroysElements) {
  Arena arena;
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    ~Probe() { --live; }
  };
  {
    ArenaVector<Probe> v((ArenaAllocator<Probe>(arena)));
    for (int i = 0; i < 100; ++i) v.emplace_back();
    EXPECT_EQ(live, 100);
  }
  EXPECT_EQ(live, 0) << "ArenaVector must run element destructors";
}

TEST(ArenaVectorTest, BackingStorageComesFromArena) {
  Arena arena;
  ArenaVector<std::uint64_t> v((ArenaAllocator<std::uint64_t>(arena)));
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_GE(arena.allocated_bytes(), 1000 * sizeof(std::uint64_t));
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaVectorTest, RebindAcrossValueTypes) {
  Arena arena;
  ArenaAllocator<int> ai(arena);
  ArenaAllocator<double> ad(ai);  // rebinding copy ctor
  EXPECT_EQ(ai, ArenaAllocator<int>(ad));
  EXPECT_EQ(&ad.arena(), &arena);
}

}  // namespace
}  // namespace lotec
