// ExperimentOptions::validate(): every incoherent knob combination is
// rejected up front with an actionable UsageError (run_scenario calls it
// before building a cluster).
#include <gtest/gtest.h>

#include "check/events.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

/// The validation error for `options` must mention every `needles` substring
/// (the message has to tell the user what to change, not just say "invalid").
void expect_rejected(const ExperimentOptions& options,
                     std::initializer_list<const char*> needles) {
  try {
    options.validate();
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    for (const char* needle : needles)
      EXPECT_NE(what.find(needle), std::string::npos)
          << "message '" << what << "' lacks '" << needle << "'";
  }
}

TEST(ExperimentOptionsTest, DefaultsValidate) {
  const ExperimentOptions options;
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RejectsEmptyCluster) {
  ExperimentOptions options;
  options.nodes = 0;
  expect_rejected(options, {"nodes"});

  options = {};
  options.page_size = 0;
  expect_rejected(options, {"page_size"});

  options = {};
  options.max_active_families = 0;
  expect_rejected(options, {"max_active_families"});
}

TEST(ExperimentOptionsTest, RejectsLockCacheCapacityWithoutLockCache) {
  ExperimentOptions options;
  options.lock_cache_capacity = 8;
  expect_rejected(options, {"lock_cache_capacity", "enable lock_cache"});

  options.lock_cache = true;
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RejectsSiteLocalityOutsideUnitRange) {
  ExperimentOptions options;
  options.site_locality = 1.5;
  expect_rejected(options, {"site_locality", "[-1, 1]"});

  options.site_locality = -2.0;
  expect_rejected(options, {"site_locality"});

  options.site_locality = -1.0;  // negative within range disables the knob
  EXPECT_NO_THROW(options.validate());
  options.site_locality = 1.0;
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RejectsFaultProbabilitiesOutsideUnitRange) {
  ExperimentOptions options;
  options.fault.drop_probability = 1.5;
  expect_rejected(options, {"drop_probability", "[0, 1]"});

  options = {};
  options.fault.duplicate_probability = -0.1;
  expect_rejected(options, {"duplicate_probability"});

  options = {};
  options.fault.delay_probability = 2.0;
  expect_rejected(options, {"delay_probability"});
}

TEST(ExperimentOptionsTest, RejectsFaultsAgainstNonexistentNodes) {
  // Crash targeting a node outside the cluster.
  ExperimentOptions options;
  options.nodes = 4;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.at_tick = 10;
  crash.node = NodeId(7);
  options.fault.events.push_back(crash);
  expect_rejected(options, {"node 7", "no such node"});

  // Crash with no target node at all.
  options.fault.events[0].node = NodeId{};
  expect_rejected(options, {"no such node"});

  // A valid target passes.
  options.fault.events[0].node = NodeId(3);
  EXPECT_NO_THROW(options.validate());

  // Partition naming a node outside the cluster.
  options = {};
  options.nodes = 4;
  FaultEvent part;
  part.action = FaultAction::kPartitionStart;
  part.at_tick = 10;
  part.group_a = {NodeId(0), NodeId(9)};
  part.group_b = {NodeId(1)};
  options.fault.events.push_back(part);
  expect_rejected(options, {"partitions node 9"});
}

TEST(ExperimentOptionsTest, MessageTargetedFaultsNeedNoFixedNode) {
  // kMessageSrc/kMessageDst crashes resolve their node at fire time — the
  // fixed-node check must not reject them.
  ExperimentOptions options;
  options.nodes = 4;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.on_kind = MessageKind::kLockAcquireRequest;
  crash.target = FaultTarget::kMessageDst;
  options.fault.events.push_back(crash);
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RejectsSpanFilesWithoutTracing) {
  ExperimentOptions options;
  options.spans_jsonl = "spans.jsonl";
  expect_rejected(options, {"trace_spans"});

  options = {};
  options.chrome_trace = "trace.json";
  expect_rejected(options, {"trace_spans"});

  options.trace_spans = true;
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RunScenarioValidatesBeforeBuildingACluster) {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 1;
  const Workload workload(spec);
  ExperimentOptions options;
  options.site_locality = 2.0;
  EXPECT_THROW((void)run_scenario(workload, ProtocolKind::kLotec, options),
               UsageError);
}

TEST(ExperimentOptionsTest, ToClusterConfigCarriesEveryKnob) {
  ExperimentOptions options;
  options.nodes = 7;
  options.page_size = 512;
  options.cluster_seed = 99;
  options.max_active_families = 3;
  options.multicast = true;
  options.undo = UndoStrategy::kShadowPage;
  options.cache_capacity_pages = 11;
  options.lock_cache = true;
  options.lock_cache_capacity = 5;
  options.trace_spans = true;
  options.spans_jsonl = "spans.jsonl";
  const ClusterConfig cfg = options.to_cluster_config(ProtocolKind::kRc);
  EXPECT_EQ(cfg.nodes, 7u);
  EXPECT_EQ(cfg.protocol, ProtocolKind::kRc);
  EXPECT_EQ(cfg.page_size, 512u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.max_active_families, 3u);
  EXPECT_TRUE(cfg.net.multicast_capable);
  EXPECT_EQ(cfg.undo, UndoStrategy::kShadowPage);
  EXPECT_EQ(cfg.cache_capacity_pages, 11u);
  EXPECT_TRUE(cfg.lock_cache);
  EXPECT_EQ(cfg.lock_cache_capacity, 5u);
  EXPECT_TRUE(cfg.obs.trace_spans);
  EXPECT_EQ(cfg.obs.spans_jsonl, "spans.jsonl");
}

TEST(ExperimentOptionsTest, NodeFaultsImplyGdoReplication) {
  ExperimentOptions options;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.at_tick = 10;
  crash.node = NodeId(1);
  options.fault.events.push_back(crash);
  EXPECT_TRUE(
      options.to_cluster_config(ProtocolKind::kLotec).gdo.replicate);
  EXPECT_NO_THROW(options.validate());
}

// The previously missing test: a directly-constructed Cluster rejects the
// same incoherent configs run_scenario rejects — validation happens in
// ClusterCore construction, not only in the experiment harness.
TEST(ExperimentOptionsTest, ClusterConstructionValidates) {
  const auto expect_ctor_rejected = [](const ClusterConfig& cfg,
                                       const char* needle) {
    try {
      Cluster cluster(cfg);
      FAIL() << "expected UsageError mentioning '" << needle << "'";
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  ClusterConfig cfg;
  cfg.nodes = 0;
  expect_ctor_rejected(cfg, "nodes must be >= 1");

  cfg = {};
  cfg.lock_cache_capacity = 4;
  expect_ctor_rejected(cfg, "enable lock_cache");

  cfg = {};
  cfg.fault.drop_probability = 1.5;
  expect_ctor_rejected(cfg, "[0, 1]");

  cfg = {};
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.at_tick = 1;
  crash.node = NodeId(99);
  cfg.fault.events.push_back(crash);
  cfg.gdo.replicate = true;
  expect_ctor_rejected(cfg, "no such node");

  cfg = {};
  FaultEvent part;
  part.action = FaultAction::kPartitionStart;
  part.at_tick = 1;
  part.group_a = {NodeId(99)};
  cfg.fault.events.push_back(part);
  expect_ctor_rejected(cfg, "partitions node");

  cfg = {};
  cfg.obs.chrome_trace = "trace.json";
  expect_ctor_rejected(cfg, "trace_spans");

  cfg = {};
  cfg.scheduler = SchedulerMode::kConcurrent;
  cfg.lock_cache = true;
  expect_ctor_rejected(cfg, "deterministic scheduler");

  cfg = {};
  EXPECT_NO_THROW(Cluster{cfg});
}

// --- wire transport (--distributed) composition rules ----------------------
// The wire backend keeps the deterministic coordinator in charge; every
// mode that wants to intercept or reorder individual in-process messages
// (schedule exploration, the serializability checker's sink, FaultEngine
// message chaos) is meaningless across real sockets and must be rejected
// up front with a message that says what to drop.

TEST(ExperimentOptionsTest, WireDefaultsValidate) {
  ExperimentOptions options;
  options.wire.enabled = true;
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, RejectsWireWithMessageChaos) {
  ExperimentOptions options;
  options.wire.enabled = true;
  options.fault.drop_probability = 0.01;
  expect_rejected(options, {"--distributed", "crash/restart"});

  options.fault.drop_probability = 0.0;
  options.fault.duplicate_probability = 0.5;
  expect_rejected(options, {"--distributed"});

  options.fault.duplicate_probability = 0.0;
  options.fault.delay_probability = 0.2;
  expect_rejected(options, {"--distributed"});
}

TEST(ExperimentOptionsTest, RejectsWireWithDropMessageEvents) {
  ExperimentOptions options;
  options.wire.enabled = true;
  FaultEvent drop;
  drop.action = FaultAction::kDropMessage;
  drop.on_kind = MessageKind::kLockAcquireRequest;
  options.fault.events.push_back(drop);
  expect_rejected(options, {"--distributed", "event #0"});

  // Crash/restart events stay legal: they map onto real worker kills.
  options = {};
  options.wire.enabled = true;
  options.nodes = 4;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.at_tick = 10;
  crash.node = NodeId(1);
  options.fault.events.push_back(crash);
  EXPECT_NO_THROW(options.validate());
}

TEST(ExperimentOptionsTest, WireClusterConfigRejectsCheckAndExploreModes) {
  // schedule_picker / check_sink / the concurrent scheduler live on
  // ClusterConfig (the check and explore tools build one directly), so the
  // rules are asserted there; validate() runs before any worker spawns.
  const auto expect_cfg_rejected = [](const ClusterConfig& cfg,
                                      const char* needle) {
    try {
      cfg.validate();
      FAIL() << "expected UsageError mentioning '" << needle << "'";
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  ClusterConfig cfg;
  cfg.wire.enabled = true;
  cfg.scheduler = SchedulerMode::kConcurrent;
  expect_cfg_rejected(cfg, "deterministic scheduler");

  cfg = {};
  cfg.wire.enabled = true;
  cfg.schedule_picker = [](const std::vector<std::size_t>&, std::size_t) {
    return std::size_t{0};
  };
  expect_cfg_rejected(cfg, "schedule exploration");

  cfg = {};
  cfg.wire.enabled = true;
  CheckSink sink;
  cfg.check_sink = &sink;
  expect_cfg_rejected(cfg, "check sink");
}

TEST(ExperimentOptionsTest, ProtocolTracePathInsertsTagBeforeExtension) {
  EXPECT_EQ(protocol_trace_path("trace.json", ProtocolKind::kLotec),
            "trace_LOTEC.json");
  EXPECT_EQ(protocol_trace_path("out/spans.jsonl", ProtocolKind::kCotec),
            "out/spans_COTEC.jsonl");
  EXPECT_EQ(protocol_trace_path("spans", ProtocolKind::kRc), "spans_RC");
  // A dot inside a directory name is not an extension.
  EXPECT_EQ(protocol_trace_path("run.d/spans", ProtocolKind::kOtec),
            "run.d/spans_OTEC");
}

}  // namespace
}  // namespace lotec
