// Bounded caches: eviction under pressure must never lose data (the
// authoritative newest copy of a page is unevictable), locked objects stay
// pinned, and final states match an unbounded run.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

ClusterConfig capped_config(std::size_t capacity) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.page_size = 64;
  cfg.seed = 21;
  cfg.cache_capacity_pages = capacity;
  return cfg;
}

ClassBuilder wide_class(std::uint32_t page_size, int pages) {
  ClassBuilder b("Wide" + std::to_string(pages), page_size);
  for (int p = 0; p < pages; ++p)
    b.attribute("a" + std::to_string(p), page_size);
  std::vector<std::string> all;
  for (int p = 0; p < pages; ++p) all.push_back("a" + std::to_string(p));
  b.method("touch_all", all, all, [pages](MethodContext& ctx) {
    for (int p = 0; p < pages; ++p) {
      const std::string attr = "a" + std::to_string(p);
      ctx.set<std::int64_t>(attr, ctx.get<std::int64_t>(attr) + 1);
    }
  });
  return b;
}

TEST(CacheCapacityTest, EvictionKeepsResultsCorrect) {
  const auto run = [](std::size_t capacity) {
    Cluster cluster(capped_config(capacity));
    const ClassId cls = cluster.define_class(wide_class(64, 6));
    std::vector<ObjectId> objs;
    for (int i = 0; i < 5; ++i)
      objs.push_back(cluster.create_object(cls, NodeId(0)));
    // Rotate each object through all nodes several times; with a small
    // budget each acquisition evicts the previous object's pages.
    for (int round = 0; round < 3; ++round)
      for (const ObjectId obj : objs)
        for (std::uint32_t n = 1; n < 4; ++n) {
          const TxnResult r = cluster.run_root(obj, "touch_all", NodeId(n));
          EXPECT_TRUE(r.committed);
        }
    std::vector<std::int64_t> state;
    for (const ObjectId obj : objs)
      for (int p = 0; p < 6; ++p)
        state.push_back(
            cluster.peek<std::int64_t>(obj, "a" + std::to_string(p)));
    return std::pair(state, cluster.total_evicted_pages());
  };

  const auto [unbounded_state, unbounded_evictions] = run(0);
  const auto [capped_state, capped_evictions] = run(8);
  EXPECT_EQ(unbounded_evictions, 0u);
  EXPECT_GT(capped_evictions, 0u);
  EXPECT_EQ(unbounded_state, capped_state);
  for (const std::int64_t v : unbounded_state) EXPECT_EQ(v, 9);
}

TEST(CacheCapacityTest, OwnerPagesAreNeverEvicted) {
  Cluster cluster(capped_config(2));  // brutally small
  const ClassId cls = cluster.define_class(wide_class(64, 4));
  const ObjectId a = cluster.create_object(cls, NodeId(0));
  const ObjectId b = cluster.create_object(cls, NodeId(0));
  // Node 1 becomes the authoritative owner of both objects' pages (8 pages
  // > capacity 2), so nothing there is evictable and peeks still work.
  ASSERT_TRUE(cluster.run_root(a, "touch_all", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(b, "touch_all", NodeId(1)).committed);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(cluster.peek<std::int64_t>(a, "a" + std::to_string(p)), 1);
    EXPECT_EQ(cluster.peek<std::int64_t>(b, "a" + std::to_string(p)), 1);
  }
}

TEST(CacheCapacityTest, WorkloadSurvivesTightCaches) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 50;
  spec.contention_theta = 0.6;
  spec.seed = 44;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kOtec;
  cfg.seed = 2;
  cfg.cache_capacity_pages = 6;
  Cluster cluster(cfg);
  const auto results = cluster.execute(workload.instantiate(cluster));
  for (const auto& r : results) EXPECT_TRUE(r.committed);
  EXPECT_GT(cluster.total_evicted_pages(), 0u);
}

TEST(CacheCapacityTest, TighterCachesCostMoreTraffic) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 60;
  spec.contention_theta = 0.6;
  spec.seed = 44;
  const Workload workload(spec);

  const auto bytes_with = [&](std::size_t capacity) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.page_size = 256;
    cfg.protocol = ProtocolKind::kLotec;
    cfg.seed = 2;
    cfg.cache_capacity_pages = capacity;
    Cluster cluster(cfg);
    const auto results = cluster.execute(workload.instantiate(cluster));
    for (const auto& r : results) EXPECT_TRUE(r.committed);
    return cluster.stats().total().bytes;
  };
  EXPECT_GT(bytes_with(4), bytes_with(0));
}

}  // namespace
}  // namespace lotec
