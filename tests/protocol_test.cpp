// ConsistencyProtocol policies: transfer plans and release reports for
// COTEC / OTEC / LOTEC / RC over synthetic images and page maps.
#include <gtest/gtest.h>

#include "protocol/protocol.hpp"

namespace lotec {
namespace {

constexpr std::uint32_t kPageSize = 64;

/// Image at `self` holding `resident` pages at the given versions.
ObjectImage make_image(const std::vector<std::pair<std::uint32_t, Lsn>>&
                           resident_versions) {
  ObjectImage img(ObjectId(1), 4, kPageSize);
  for (const auto& [p, v] : resident_versions)
    img.install_page(PageIndex(p),
                     Page{.data = std::vector<std::byte>(kPageSize), .version = v, .history = {}});
  return img;
}

PageSet pages(std::initializer_list<std::uint32_t> idx) {
  PageSet s(4);
  for (const auto i : idx) s.insert(PageIndex(i));
  return s;
}

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : map_(4, NodeId(0)) {
    // Pages 0,1 updated at node 2 (v3); page 2 updated at node 3 (v1);
    // page 3 still with the creator (node 0, v0).
    PageSet d01(4);
    d01.insert(PageIndex(0));
    d01.insert(PageIndex(1));
    map_.record_update(d01, NodeId(2), 3);
    PageSet d2(4);
    d2.insert(PageIndex(2));
    map_.record_update(d2, NodeId(3), 1);
  }

  const NodeId self_{NodeId(1)};
  PageMap map_;
};

TEST_F(ProtocolTest, StaleOrMissingComputation) {
  // Self has page 0 current (v3), page 1 stale (v2), page 2 missing,
  // page 3 missing.
  const ObjectImage img = make_image({{0, 3}, {1, 2}});
  EXPECT_EQ(stale_or_missing_pages(self_, img, map_), pages({1, 2, 3}));
}

TEST_F(ProtocolTest, CotecTransfersEverythingNotOwnedHere) {
  const auto p = make_protocol(ProtocolKind::kCotec);
  const ObjectImage img = make_image({{0, 3}, {1, 3}, {2, 1}, {3, 0}});
  // Fully current locally — COTEC still moves all 4 pages because the map
  // says their authoritative copies live elsewhere (version-blind baseline).
  EXPECT_EQ(p->pages_to_transfer(self_, img, map_, pages({0})),
            pages({0, 1, 2, 3}));
  EXPECT_FALSE(p->allows_demand_fetch());
  EXPECT_FALSE(p->eager_push_on_release());
}

TEST_F(ProtocolTest, CotecSkipsPagesOwnedBySelf) {
  PageMap map(4, self_);  // everything already newest here
  const auto p = make_protocol(ProtocolKind::kCotec);
  const ObjectImage img = make_image({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_TRUE(p->pages_to_transfer(self_, img, map, pages({})).empty());
}

TEST_F(ProtocolTest, OtecTransfersOnlyStaleOrMissing) {
  const auto p = make_protocol(ProtocolKind::kOtec);
  const ObjectImage img = make_image({{0, 3}, {1, 2}});
  EXPECT_EQ(p->pages_to_transfer(self_, img, map_, pages({0})),
            pages({1, 2, 3}));
}

TEST_F(ProtocolTest, LotecIntersectsWithPrediction) {
  const auto p = make_protocol(ProtocolKind::kLotec);
  const ObjectImage img = make_image({{0, 3}, {1, 2}});
  // Stale/missing = {1,2,3}; predicted = {0,1,3} -> fetch {1,3} only.
  EXPECT_EQ(p->pages_to_transfer(self_, img, map_, pages({0, 1, 3})),
            pages({1, 3}));
  EXPECT_TRUE(p->allows_demand_fetch());
}

TEST_F(ProtocolTest, LotecEmptyPredictionFetchesNothing) {
  const auto p = make_protocol(ProtocolKind::kLotec);
  const ObjectImage img = make_image({});
  EXPECT_TRUE(p->pages_to_transfer(self_, img, map_, pages({})).empty());
}

TEST_F(ProtocolTest, RcFetchesLikeOtecButPushesOnRelease) {
  const auto p = make_protocol(ProtocolKind::kRc);
  const ObjectImage img = make_image({{0, 3}});
  EXPECT_EQ(p->pages_to_transfer(self_, img, map_, pages({})),
            pages({1, 2, 3}));
  EXPECT_TRUE(p->eager_push_on_release());
  EXPECT_FALSE(p->allows_demand_fetch());
}

TEST_F(ProtocolTest, ReleaseReports) {
  ObjectImage img = make_image({{0, 3}, {1, 3}, {2, 1}});
  std::vector<std::byte> one{std::byte{1}};
  img.write_bytes(0, one);  // dirty page 0

  // COTEC/OTEC/RC report the clean resident remainder; LOTEC reports none.
  EXPECT_EQ(make_protocol(ProtocolKind::kCotec)->pages_to_report(img),
            pages({1, 2}));
  EXPECT_EQ(make_protocol(ProtocolKind::kOtec)->pages_to_report(img),
            pages({1, 2}));
  EXPECT_EQ(make_protocol(ProtocolKind::kRc)->pages_to_report(img),
            pages({1, 2}));
  EXPECT_TRUE(
      make_protocol(ProtocolKind::kLotec)->pages_to_report(img).empty());
}

TEST(ProtocolFactoryTest, NamesAndKinds) {
  for (std::size_t k = 0; k < kNumProtocols; ++k) {
    const auto kind = static_cast<ProtocolKind>(k);
    const auto p = make_protocol(kind);
    EXPECT_EQ(p->kind(), kind);
    EXPECT_EQ(p->name(), to_string(kind));
  }
}

TEST_F(ProtocolTest, LotecDsdSharesLotecPlanPlusDeltas) {
  const auto p = make_protocol(ProtocolKind::kLotecDsd);
  const ObjectImage img = make_image({{0, 3}, {1, 2}});
  EXPECT_EQ(p->pages_to_transfer(self_, img, map_, pages({0, 1, 3})),
            pages({1, 3}));
  EXPECT_TRUE(p->allows_demand_fetch());
  EXPECT_TRUE(p->delta_transfers());
  EXPECT_FALSE(make_protocol(ProtocolKind::kLotec)->delta_transfers());
  EXPECT_TRUE(p->pages_to_report(img).empty());
}

TEST(PageMapTest, RecordCurrentGuardsAgainstStaleReports) {
  PageMap map(2, NodeId(0));
  PageSet d(2);
  d.insert(PageIndex(0));
  map.record_update(d, NodeId(1), 5);
  map.record_current(PageIndex(0), NodeId(2), 4);  // stale: ignored
  EXPECT_EQ(map.at(PageIndex(0)), (PageLocation{NodeId(1), 5}));
  map.record_current(PageIndex(0), NodeId(2), 5);  // equal: owner moves
  EXPECT_EQ(map.at(PageIndex(0)), (PageLocation{NodeId(2), 5}));
}

TEST(PageMapTest, WireBytesScaleWithPages) {
  EXPECT_EQ(PageMap(3, NodeId(0)).wire_bytes(),
            3 * wire::kPageMapEntryBytes);
}

}  // namespace
}  // namespace lotec
