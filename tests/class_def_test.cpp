// ClassDef / ClassBuilder / ClassRegistry: schema construction and the
// compiler-style page-access analysis (AccessSummary).
#include <gtest/gtest.h>

#include "method/registry.hpp"
#include "method/value.hpp"

namespace lotec {
namespace {

MethodBody noop() {
  return [](MethodContext&) {};
}

TEST(ClassBuilderTest, BuildsLayoutAndMethods) {
  const ClassDef cls = ClassBuilder("Account", 64)
                           .attribute("balance", 8)
                           .attribute("owner", 32)
                           .method("deposit", {"balance"}, {"balance"}, noop())
                           .method("who", {"owner"}, {}, noop())
                           .build(ClassId(3));
  EXPECT_EQ(cls.id(), ClassId(3));
  EXPECT_EQ(cls.name(), "Account");
  EXPECT_EQ(cls.num_methods(), 2u);
  EXPECT_EQ(cls.find_method("who"), MethodId(1));
  EXPECT_THROW((void)cls.find_method("nope"), UsageError);
  EXPECT_EQ(cls.layout().num_attributes(), 2u);
}

TEST(ClassBuilderTest, AnalysisComputesPageSetsAndLockMode) {
  // 3 pages: a0 on page 0, blob covers pages 0-2, tail on page 2.
  const ClassDef cls =
      ClassBuilder("C", 64)
          .attribute("a0", 8)
          .attribute("blob", 120)
          .attribute("tail", 8)
          .method("read_a0", {"a0"}, {}, noop())
          .method("write_tail", {}, {"tail"}, noop())
          .method("rw", {"a0"}, {"blob"}, noop())
          .build(ClassId(0));

  const AccessSummary& read_a0 = cls.summary(MethodId(0));
  EXPECT_FALSE(read_a0.needs_write_lock);
  EXPECT_EQ(read_a0.predicted_pages.to_string(), "{0}");

  const AccessSummary& write_tail = cls.summary(MethodId(1));
  EXPECT_TRUE(write_tail.needs_write_lock);
  EXPECT_EQ(write_tail.write_pages.to_string(), "{2}");
  EXPECT_EQ(write_tail.predicted_pages.to_string(), "{2}");

  const AccessSummary& rw = cls.summary(MethodId(2));
  EXPECT_TRUE(rw.needs_write_lock);
  EXPECT_EQ(rw.read_pages.to_string(), "{0}");
  EXPECT_EQ(rw.write_pages.to_string(), "{0,1}");
  EXPECT_EQ(rw.predicted_pages.to_string(), "{0,1}");
}

TEST(ClassBuilderTest, UndeclaredAccessPredictsWholeObject) {
  const ClassDef cls = ClassBuilder("C", 64)
                           .attribute("a", 64)
                           .attribute("b", 64)
                           .method("wild", {}, {}, noop(),
                                   /*may_access_undeclared=*/true)
                           .build(ClassId(0));
  const AccessSummary& s = cls.summary(MethodId(0));
  EXPECT_TRUE(s.needs_write_lock);  // conservative
  EXPECT_EQ(s.predicted_pages, PageSet::full(2));
}

TEST(ClassBuilderTest, OptimisticPredictionNarrowsPages) {
  AttrSet reads({AttrId(0), AttrId(1)});
  AttrSet writes({AttrId(1)});
  AttrSet hint({AttrId(1)});
  const ClassDef cls =
      ClassBuilder("C", 64)
          .attribute("p0", 64)
          .attribute("p1", 64)
          .method_ids("m", reads, writes, noop(), false, hint)
          .build(ClassId(0));
  const AccessSummary& s = cls.summary(MethodId(0));
  // Prediction covers only the hint's page, not all declared pages.
  EXPECT_EQ(s.predicted_pages.to_string(), "{1}");
  EXPECT_TRUE(s.needs_write_lock);
  // Declared envelope unchanged.
  EXPECT_EQ(s.read_pages.to_string(), "{0,1}");
}

TEST(ClassBuilderTest, RejectsBadDefinitions) {
  EXPECT_THROW(ClassBuilder("C", 64).attribute("a", 8).build(ClassId(0)),
               UsageError);  // no methods
  EXPECT_THROW(ClassBuilder("C", 64)
                   .attribute("a", 8)
                   .method("m", {"zzz"}, {}, noop())
                   .build(ClassId(0)),
               UsageError);  // unknown attribute name
  EXPECT_THROW(ClassBuilder("C", 64)
                   .attribute("a", 8)
                   .method("m", {}, {}, MethodBody{})
                   .build(ClassId(0)),
               UsageError);  // missing body
}

TEST(ClassRegistryTest, RegisterFindGet) {
  ClassRegistry registry;
  const ClassId a = registry.register_class(ClassBuilder("A", 64)
                                                .attribute("x", 8)
                                                .method("m", {}, {"x"},
                                                        noop()));
  const ClassId b = registry.register_class(ClassBuilder("B", 64)
                                                .attribute("y", 8)
                                                .method("m", {}, {"y"},
                                                        noop()));
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.get(a).name(), "A");
  EXPECT_EQ(registry.find("B"), b);
  EXPECT_THROW((void)registry.find("C"), UsageError);
  EXPECT_THROW((void)registry.get(ClassId(9)), UsageError);
  EXPECT_THROW(registry.register_class(ClassBuilder("A", 64)
                                           .attribute("x", 8)
                                           .method("m", {}, {}, noop())),
               UsageError);  // duplicate name
}

TEST(AttrSetTest, OrderedDedupedOps) {
  AttrSet s({AttrId(3), AttrId(1), AttrId(3)});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(AttrId(1)));
  EXPECT_FALSE(s.contains(AttrId(2)));
  s.insert(AttrId(2));
  s.insert(AttrId(2));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.items()[0], AttrId(1));
  EXPECT_EQ(s.items()[2], AttrId(3));

  const AttrSet u = s.united(AttrSet({AttrId(9), AttrId(1)}));
  EXPECT_EQ(u.size(), 4u);
  EXPECT_TRUE(u.contains(AttrId(9)));
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<std::byte> buf(16);
  encode_value<std::int64_t>(buf, -1234567);
  EXPECT_EQ(decode_value<std::int64_t>(buf), -1234567);
  encode_value<double>(buf, 2.75);
  EXPECT_EQ(decode_value<double>(buf), 2.75);

  std::vector<std::byte> small(2);
  EXPECT_THROW(encode_value<std::int64_t>(small, 1), UsageError);
  EXPECT_THROW((void)decode_value<std::int64_t>(small), UsageError);
}

TEST(ValueTest, StringPaddingRoundTrip) {
  std::vector<std::byte> buf(8);
  encode_string(buf, "hi");
  EXPECT_EQ(decode_string(buf), "hi");
  encode_string(buf, "12345678");  // exactly fits, no NUL
  EXPECT_EQ(decode_string(buf), "12345678");
  EXPECT_THROW(encode_string(buf, "123456789"), UsageError);
}

}  // namespace
}  // namespace lotec
