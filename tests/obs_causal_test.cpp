// PR 5 tentpole: causal cross-node propagation, critical-path analysis and
// the always-on flight recorder.  Covers the span-lane fault-injection
// satellites: crashes close abandoned spans, retries mint fresh trace ids,
// and the recorder produces a Perfetto-loadable post-mortem.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "fault/fault_schedule.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/cluster.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace lotec {
namespace {

/// One traced fig2-style run, shared by the causal-propagation tests (the
/// scenario is deterministic, so every test sees the identical forest).
ScenarioResult traced_fig2() {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 60;
  const Workload workload(spec);
  ExperimentOptions options;
  options.nodes = 8;
  options.trace_spans = true;
  return run_scenario(workload, ProtocolKind::kLotec, options);
}

TEST(CausalPropagationTest, ServeSpansInheritTheRequestersTraceViaLink) {
  const ScenarioResult r = traced_fig2();
  ASSERT_FALSE(r.spans.empty());

  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : r.spans) by_id[s.id] = &s;

  std::size_t serve_spans = 0, linked = 0;
  for (const SpanRecord& s : r.spans) {
    if (s.phase != SpanPhase::kGdoServe && s.phase != SpanPhase::kPageServe)
      continue;
    ++serve_spans;
    // Remote-side work lives on the directory lane, never a family lane.
    EXPECT_EQ(s.family, 0u) << "serve span " << s.id;
    if (s.link == 0) continue;  // requester had no open span (reclaim paths)
    ++linked;
    const auto it = by_id.find(s.link);
    ASSERT_NE(it, by_id.end())
        << "serve span " << s.id << " links to unknown span " << s.link;
    // The causal edge carries the requesting family's trace across lanes.
    EXPECT_EQ(s.trace, it->second->trace) << "serve span " << s.id;
    EXPECT_NE(s.trace, 0u);
  }
  EXPECT_GT(serve_spans, 0u) << "fig2 run produced no gdo/page serve spans";
  EXPECT_GT(linked, 0u) << "no serve span carried a causal link";
}

TEST(CausalPropagationTest, EveryFamilyAttemptMintsAFreshTraceId) {
  const ScenarioResult r = traced_fig2();
  std::set<std::uint64_t> traces;
  std::size_t attempts = 0;
  for (const SpanRecord& s : r.spans) {
    if (s.phase != SpanPhase::kFamilyAttempt) continue;
    ++attempts;
    EXPECT_NE(s.trace, 0u);
    EXPECT_TRUE(traces.insert(s.trace).second)
        << "trace id " << s.trace << " reused across attempts";
  }
  ASSERT_GT(attempts, 0u);
  // Retries are separate causal domains: one trace id per attempt, so the
  // set is exactly as large as the attempt count.
  EXPECT_EQ(traces.size(), attempts);
}

TEST(CausalPropagationTest, MessagesCarryTheSendersContext) {
  const ScenarioResult r = traced_fig2();
  ASSERT_FALSE(r.messages.empty());

  std::set<std::uint64_t> family_traces;
  std::set<std::uint64_t> span_ids;
  for (const SpanRecord& s : r.spans) {
    if (s.trace != 0) family_traces.insert(s.trace);
    span_ids.insert(s.id);
  }

  std::size_t stamped = 0;
  for (const MessageRecord& m : r.messages) {
    if (m.trace == 0) continue;
    ++stamped;
    EXPECT_TRUE(family_traces.contains(m.trace))
        << m.kind << " message stamped with unknown trace " << m.trace;
    if (m.span != 0) {
      EXPECT_TRUE(span_ids.contains(m.span))
          << m.kind << " message stamped with unknown span " << m.span;
    }
  }
  EXPECT_GT(stamped, 0u) << "no message carried a causal stamp";
}

TEST(CriticalPathTest, PerPhaseSelfTimeSumsToTheRootsWallTime) {
  const ScenarioResult r = traced_fig2();
  const CriticalPath cp = analyze_critical_path(r.spans, r.messages);
  ASSERT_TRUE(cp.valid());
  EXPECT_GT(cp.wall_ticks, 0u);
  EXPECT_NE(cp.trace_id, 0u);

  // The attribution identity: self time across the causal tree accounts
  // for the root's whole wall time, no tick double-counted or lost.
  EXPECT_EQ(cp.phase_self_total(), cp.wall_ticks);

  // The blocking chain starts at the root attempt and only descends.
  ASSERT_FALSE(cp.chain.empty());
  EXPECT_EQ(cp.chain.front().phase, SpanPhase::kFamilyAttempt);
  EXPECT_EQ(cp.chain.front().id, cp.root);
  for (std::size_t i = 1; i < cp.chain.size(); ++i)
    EXPECT_LE(cp.chain[i].duration, cp.chain[i - 1].duration);

  // Message attribution found this trace's traffic.
  EXPECT_FALSE(cp.by_kind.empty());
}

TEST(CriticalPathTest, EmptyOrRootlessTraceIsInvalidNotUB) {
  EXPECT_FALSE(analyze_critical_path({}).valid());
  SpanRecord lone;
  lone.id = 1;
  lone.phase = SpanPhase::kLockAcquire;
  lone.begin = 1;
  lone.end = 5;
  EXPECT_FALSE(analyze_critical_path({lone}).valid());
}

TEST(SpanFaultTest, CrashesCloseAbandonedSpansAndRetriesGetFreshTraces) {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 50;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 6;
  cfg.scheduler = SchedulerMode::kDeterministic;
  cfg.gdo.replicate = true;
  cfg.fault = fault_presets::chaos(NodeId(1), NodeId(4), /*seed=*/7);
  cfg.obs.trace_spans = true;

  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));

  ClusterObservation obs = cluster.observe();
  ASSERT_NE(obs.fault_engine(), nullptr);
  EXPECT_GT(obs.fault_engine()->stats().crashes, 0u);

  // No orphan open spans: every lane (family and directory) unwound, even
  // through the crash/retry paths.
  EXPECT_EQ(obs.tracer().open_count(), 0u);

  const std::vector<SpanRecord> spans = obs.spans();
  ASSERT_FALSE(spans.empty());
  std::set<std::uint64_t> attempt_traces;
  std::size_t attempts = 0;
  for (const SpanRecord& s : spans) {
    EXPECT_LE(s.begin, s.end);
    if (s.phase == SpanPhase::kFamilyAttempt) {
      ++attempts;
      attempt_traces.insert(s.trace);
    }
  }
  // Fault retries mint fresh trace ids, exactly like deadlock retries.
  EXPECT_EQ(attempt_traces.size(), attempts);
  // The run actually exercised the fault paths.
  const auto counters = obs.metrics().counters();
  const auto it = counters.find("txn.fault_retries");
  EXPECT_TRUE(it != counters.end() && it->second > 0)
      << "chaos schedule caused no fault retries";
}

TEST(SpanFaultTest, MiniChaosSoakLeavesNoOpenSpans) {
  // A handful of seeded chaos runs: whatever the fault schedule does to the
  // span lanes, execute() returns with every span closed.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 25;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Workload workload(spec);
    ClusterConfig cfg;
    cfg.nodes = 5;
    cfg.scheduler = SchedulerMode::kDeterministic;
    cfg.gdo.replicate = true;
    cfg.fault = fault_presets::chaos(NodeId(2), NodeId(3), seed,
                                     /*first_crash_tick=*/40 + seed * 17,
                                     /*window=*/80, /*drop=*/0.02);
    cfg.obs.trace_spans = true;
    Cluster cluster(cfg);
    (void)cluster.execute(workload.instantiate(cluster));
    EXPECT_EQ(cluster.observe().tracer().open_count(), 0u)
        << "seed " << seed << " left open spans";
  }
}

TEST(FlightRecorderTest, RecordsMessagesEvenWithTracingOff) {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 20;
  const Workload workload(spec);
  ClusterConfig cfg;
  cfg.nodes = 4;
  // No obs.trace_spans: the recorder must be armed regardless.
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));

  FlightRecorder* rec = cluster.observe().flight_recorder();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->num_nodes(), 4u);

  std::size_t message_events = 0;
  for (std::uint32_t n = 0; n < 4; ++n)
    for (const FlightEvent& e : rec->events(n))
      if (e.kind == FlightEvent::Kind::kMessage) ++message_events;
  EXPECT_GT(message_events, 0u);

  // And the tracer recorded nothing: spans stayed off.
  EXPECT_TRUE(cluster.observe().spans().empty());

  std::ostringstream os;
  rec->dump(os);
  EXPECT_TRUE(json_wellformed(os.str()));
}

TEST(FlightRecorderTest, CrashDumpIsPerfettoLoadableAndMarksTheVictim) {
  const std::string path = "flight_recorder_test_dump.json";
  std::remove(path.c_str());

  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 40;
  const Workload workload(spec);
  ClusterConfig cfg;
  cfg.nodes = 5;
  cfg.scheduler = SchedulerMode::kDeterministic;
  cfg.gdo.replicate = true;
  cfg.fault = fault_presets::chaos(NodeId(1), NodeId(3), /*seed=*/11);
  cfg.obs.trace_spans = true;  // span events land in the ring too
  cfg.obs.flight_dump = path;

  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  ASSERT_GT(cluster.observe().fault_engine()->stats().crashes, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash produced no flight dump at " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();

  EXPECT_TRUE(json_wellformed(dump));
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  // The victim is called out and its crash marker is in the ring.
  EXPECT_NE(dump.find("CRASH"), std::string::npos);
  EXPECT_NE(dump.find("CRASH VICTIM"), std::string::npos);
  // Messages show up as instants ("msg <Kind>").
  EXPECT_NE(dump.find("msg "), std::string::npos);

  std::remove(path.c_str());
  // The second crash of the chaos schedule went to path.2 — clean that up
  // too (its existence is the uniquified-dump behaviour working).
  std::remove((path + ".2").c_str());
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsGlobalOrder) {
  FlightRecorder rec(/*nodes=*/2, /*capacity=*/4);
  TraceContext ctx;
  for (int i = 0; i < 10; ++i)
    rec.note_message("Ping", /*src=*/0, /*dst=*/0, SpanRecord::kNoObject,
                     /*bytes=*/64, ctx);
  const std::vector<FlightEvent> events = rec.events(0);
  ASSERT_EQ(events.size(), 4u);  // capacity bounds the ring
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  // The survivors are the NEWEST four.
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_TRUE(rec.events(1).empty());
}

}  // namespace
}  // namespace lotec
