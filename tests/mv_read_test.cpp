// Multi-version snapshot reads (mv_read, PROTOCOL.md §14): read-only
// families resolve every page against a commit-tick snapshot with zero lock
// traffic.  Covers the kReadOnly submission contract, lock-free reads that
// observe the latest committed state, a reader overlapping a committing
// writer resolving to the pre-commit version, version-ring GC fencing,
// snapshot pins blocking eviction, checker exploration of mixed schedules,
// and knob-off wire bit-identity of the declared kind.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "check/checker.hpp"
#include "check/events.hpp"
#include "check/scenarios.hpp"
#include "check/strategy.hpp"
#include "common/rng.hpp"
#include "page/object_image.hpp"
#include "page/page_store.hpp"
#include "runtime/cluster.hpp"
#include "runtime/snapshot_registry.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

ClassId define_counter(Cluster& cluster, std::uint32_t page_size,
                       std::vector<std::int64_t>* observed = nullptr) {
  return cluster.define_class(
      ClassBuilder("MvCounter", page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  })
          .method("read", {"value"}, {},
                  [observed](MethodContext& ctx) {
                    const auto v = ctx.get<std::int64_t>("value");
                    if (observed != nullptr) observed->push_back(v);
                  })
          .method("scan", {}, {},
                  [](MethodContext& ctx) {
                    (void)ctx.get<std::int64_t>("value");
                  },
                  /*may_access_undeclared=*/true));
}

std::uint64_t lock_traffic(Cluster& cluster) {
  std::uint64_t n = 0;
  for (const MessageKind k :
       {MessageKind::kLockAcquireRequest, MessageKind::kLockAcquireGrant,
        MessageKind::kLockReleaseRequest, MessageKind::kLockCallback,
        MessageKind::kCallbackReply})
    n += cluster.stats().by_kind(k).messages;
  return n;
}

// --- kReadOnly submission contract ---------------------------------------

TEST(MvReadTest, SubmissionRejectsWritingOrUnboundedReadOnlyRoots) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 256;
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, 256);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  // A root that declares writes is not admissible as kReadOnly...
  RootRequest writer;
  writer.object = obj;
  writer.method = cluster.method_id(obj, "increment");
  writer.kind = FamilyKind::kReadOnly;
  EXPECT_THROW((void)cluster.execute({writer}), UsageError);

  // ...nor is one whose access analysis is unbounded, even though its
  // declared write set is empty.  The validation runs with mv_read off too:
  // the declaration is part of the submission API, not of the knob.
  RootRequest undeclared;
  undeclared.object = obj;
  undeclared.method = cluster.method_id(obj, "scan");
  undeclared.kind = FamilyKind::kReadOnly;
  EXPECT_THROW((void)cluster.execute({undeclared}), UsageError);

  // A genuinely read-only root is accepted (and, without mv_read, simply
  // takes the ordinary lock path).
  RootRequest reader;
  reader.object = obj;
  reader.method = cluster.method_id(obj, "read");
  reader.kind = FamilyKind::kReadOnly;
  const auto results = cluster.execute({reader});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].committed);
}

// --- the lock-free read path ---------------------------------------------

TEST(MvReadTest, SnapshotReadersSendNoLockMessagesAndSeeCommittedState) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.mv_read = true;
  std::vector<std::int64_t> observed;
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, 256, &observed);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  // Establish committed state: three writers, ordinary lock path.
  const MethodId inc = cluster.method_id(obj, "increment");
  std::vector<RootRequest> writers;
  for (int i = 0; i < 3; ++i) {
    RootRequest r;
    r.object = obj;
    r.method = inc;
    r.node = NodeId(static_cast<std::uint32_t>(i) % 4);
    writers.push_back(r);
  }
  for (const TxnResult& r : cluster.execute(std::move(writers)))
    ASSERT_TRUE(r.committed);
  const std::uint64_t lock_before = lock_traffic(cluster);

  // Read-only families at every site, including ones that never held the
  // object: all resolve through the snapshot path, zero lock messages.
  const MethodId read = cluster.method_id(obj, "read");
  std::vector<RootRequest> readers;
  for (std::uint32_t n = 0; n < 4; ++n) {
    RootRequest r;
    r.object = obj;
    r.method = read;
    r.node = NodeId(n);
    r.kind = FamilyKind::kReadOnly;
    readers.push_back(r);
  }
  for (const TxnResult& r : cluster.execute(std::move(readers)))
    ASSERT_TRUE(r.committed);

  EXPECT_EQ(lock_traffic(cluster), lock_before);
  ASSERT_EQ(observed.size(), 4u);
  for (const std::int64_t v : observed) EXPECT_EQ(v, 3);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
}

// --- reader overlapping a committing writer ------------------------------

/// Records the publication order (directory stamps) and every snapshot
/// read, so a test can witness a reader resolving to a version that a
/// concurrent writer had already superseded.
class SnapshotReadRecorder : public CheckSink {
 public:
  struct Overlap {
    Lsn read_version = 0;
    Lsn published_version = 0;
  };

  void on_directory_stamp(ObjectId object, PageIndex page, Lsn version,
                          NodeId /*site*/, std::uint64_t /*tick*/) override {
    Lsn& latest = latest_[{object.value(), page.value()}];
    latest = std::max(latest, version);
  }

  void on_snapshot_read(FamilyId /*family*/, std::uint32_t /*serial*/,
                        ObjectId object, PageIndex page, Lsn version,
                        std::uint64_t /*stamp*/) override {
    ++snapshot_reads_;
    const auto it = latest_.find({object.value(), page.value()});
    const Lsn latest = it == latest_.end() ? 0 : it->second;
    // The interesting witness: a newer version was already published when
    // the stamped reader resolved to an older (pre-commit-of-that-writer)
    // one.  The serializability oracle separately checks the version is the
    // newest publication at or below the stamp.
    if (latest > version && !overlap_)
      overlap_ = Overlap{.read_version = version, .published_version = latest};
  }

  [[nodiscard]] std::uint64_t snapshot_reads() const { return snapshot_reads_; }
  [[nodiscard]] const std::optional<Overlap>& overlap() const {
    return overlap_;
  }

 private:
  std::map<std::pair<std::uint64_t, std::uint32_t>, Lsn> latest_;
  std::uint64_t snapshot_reads_ = 0;
  std::optional<Overlap> overlap_;
};

TEST(MvReadTest, ReaderOverlappingCommittingWriterSeesPreCommitVersion) {
  // Random-walk the mixed checking scenario until some schedule interleaves
  // a snapshot reader with a writer that commits between the reader's stamp
  // and its read: the reader must resolve to the still-visible pre-commit
  // version.  A handful of seeds over an 8-family workload finds one fast;
  // the loop bound only guards against a pathological regression.
  const check::CheckScenario scenario = check::check_mixed();
  const Workload workload(scenario.workload);

  bool witnessed = false;
  for (std::uint64_t seed = 1; seed <= 64 && !witnessed; ++seed) {
    SnapshotReadRecorder recorder;
    ClusterConfig cfg;
    cfg.nodes = scenario.nodes;
    cfg.page_size = 256;
    cfg.mv_read = true;
    cfg.check_sink = &recorder;
    Rng rng(seed);
    cfg.schedule_picker = [&rng](const std::vector<std::size_t>& runnable,
                                 std::size_t spawn) -> std::size_t {
      const std::size_t k =
          runnable.size() + (spawn != check::Strategy::kNoSpawn ? 1 : 0);
      return static_cast<std::size_t>(rng.below(k));
    };
    Cluster cluster(cfg);
    std::vector<RootRequest> requests =
        workload.instantiate(cluster, scenario.read_only_fraction);
    const auto results = cluster.execute(std::move(requests));

    std::size_t committed = 0;
    for (const TxnResult& r : results) committed += r.committed ? 1 : 0;
    EXPECT_GT(committed, 0u) << "seed " << seed;
    if (recorder.overlap()) {
      witnessed = true;
      EXPECT_LT(recorder.overlap()->read_version,
                recorder.overlap()->published_version);
      EXPECT_GT(recorder.snapshot_reads(), 0u);
    }
  }
  EXPECT_TRUE(witnessed)
      << "no schedule interleaved a snapshot reader with a committing writer";
}

// --- version-ring retention and GC fencing -------------------------------

TEST(MvReadTest, RingGcNeverReclaimsAVersionUnderTheFence) {
  std::atomic<std::uint64_t> fence{~std::uint64_t{0}};  // no live snapshots
  ObjectImage img(ObjectId(7), /*num_pages=*/1, /*page_size=*/64);
  img.materialize_all();
  img.enable_retention(/*depth=*/2, &fence);

  const auto commit = [&img](Lsn version, std::uint64_t tick) {
    const std::byte b{static_cast<unsigned char>(version)};
    img.write_bytes(0, {&b, 1});
    (void)img.stamp_dirty(version, tick);
  };

  // Three commits with no live snapshot: the ring honours its bound.
  for (Lsn v = 1; v <= 3; ++v) commit(v, v);
  EXPECT_LE(img.retained(PageIndex(0)).size(), 2u);

  // A reader registers at stamp 3 (fence drops); versions keep advancing
  // far past the ring depth, yet the newest version with tick <= 3 must
  // stay resolvable for as long as the fence holds.
  fence.store(3);
  for (Lsn v = 4; v <= 12; ++v) commit(v, v);
  const auto pinned = img.snapshot_page(PageIndex(0), /*stamp=*/3);
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(pinned->version, 3u);
  EXPECT_EQ(pinned->tick, 3u);
  EXPECT_EQ(static_cast<unsigned char>(pinned->data[0]), 3u);

  // The reader leaves; with the fence lifted the next commits trim the
  // ring back to its bound and the old version becomes unresolvable —
  // which in the runtime surfaces as a snapshot retry, never a wrong read.
  fence.store(~std::uint64_t{0});
  for (Lsn v = 13; v <= 16; ++v) commit(v, v);
  EXPECT_LE(img.retained(PageIndex(0)).size(), 2u);
  EXPECT_FALSE(img.snapshot_page(PageIndex(0), /*stamp=*/3).has_value());
}

TEST(MvReadTest, AdoptedVersionsResolveAndDeduplicate) {
  std::atomic<std::uint64_t> fence{1};
  ObjectImage img(ObjectId(9), 1, 64);
  img.enable_retention(4, &fence);

  // A remote snapshot fetch adopts content without touching the live page:
  // the page stays non-resident for the coherence layer, yet resolves for
  // the stamp.
  std::vector<std::byte> data(64, std::byte{0xAB});
  img.adopt_version(PageIndex(0), data, /*version=*/5, /*tick=*/1);
  img.adopt_version(PageIndex(0), data, /*version=*/5, /*tick=*/1);  // no-op
  EXPECT_FALSE(img.has_page(PageIndex(0)));
  EXPECT_EQ(img.retained(PageIndex(0)).size(), 1u);
  const auto v = img.snapshot_page(PageIndex(0), /*stamp=*/1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 5u);
}

TEST(MvReadTest, EvictionRefusedWhileSnapshotPinned) {
  PageStore store;
  std::atomic<std::uint64_t> fence{~std::uint64_t{0}};
  store.configure_retention(2, &fence);
  (void)store.create(ObjectId(1), 1, 64, /*materialize=*/true);

  store.pin_snapshot(ObjectId(1));
  store.pin_snapshot(ObjectId(1));  // two concurrent readers
  EXPECT_FALSE(store.evict(ObjectId(1)));
  store.unpin_snapshot(ObjectId(1));
  EXPECT_FALSE(store.evict(ObjectId(1)));  // one reader still live
  EXPECT_TRUE(store.contains(ObjectId(1)));
  store.unpin_snapshot(ObjectId(1));
  EXPECT_TRUE(store.evict(ObjectId(1)));
  EXPECT_FALSE(store.contains(ObjectId(1)));
  EXPECT_THROW(store.unpin_snapshot(ObjectId(1)), UsageError);
}

TEST(MvReadTest, SnapshotRegistryTracksTheOldestLiveStamp) {
  SnapshotRegistry reg;
  EXPECT_EQ(reg.oldest(), ~std::uint64_t{0});
  reg.register_stamp(5);
  reg.register_stamp(3);
  reg.register_stamp(3);
  EXPECT_EQ(reg.oldest(), 3u);
  reg.release_stamp(3);
  EXPECT_EQ(reg.oldest(), 3u);  // the second reader at 3 is still live
  reg.release_stamp(3);
  EXPECT_EQ(reg.oldest(), 5u);
  reg.release_stamp(5);
  EXPECT_EQ(reg.oldest(), ~std::uint64_t{0});
  EXPECT_THROW(reg.release_stamp(5), UsageError);
}

// --- checker exploration over mixed reader/writer schedules --------------

TEST(MvReadTest, MixedExplorationFindsNoViolations) {
  check::CheckOptions opts;
  opts.scenario = check::check_mixed();
  opts.mode = check::ExploreMode::kRandom;
  opts.max_schedules = 150;
  opts.seed = 2026;
  const check::CheckReport report = check::ScheduleChecker(opts).run();
  EXPECT_EQ(report.schedules_run, 150u);
  EXPECT_EQ(report.schedules_with_errors, 0u);
  EXPECT_FALSE(report.violation.has_value()) << report.summary();
}

// --- knob-off bit-identity -----------------------------------------------

TEST(MvReadTest, DeclaredKindAloneIsInertOnTheWire) {
  // With mv_read off, a kReadOnly family takes the ordinary lock path; the
  // declared kind must not perturb a single message.  Run the same mixed
  // workload twice — once as submitted, once with every kind demoted to
  // kReadWrite after instantiation — and compare full wire traces.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 60;
  const Workload workload(spec);

  ExperimentOptions base;
  base.nodes = 8;
  base.record_trace = true;
  base.read_only_fraction = 0.5;
  ExperimentOptions stripped = base;
  stripped.strip_family_kinds = true;

  const ScenarioResult a = run_scenario(workload, ProtocolKind::kLotec, base);
  const ScenarioResult b =
      run_scenario(workload, ProtocolKind::kLotec, stripped);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.counter("snapshot.reads"), 0u);
  EXPECT_EQ(b.counter("snapshot.reads"), 0u);
}

TEST(MvReadTest, SnapshotPathShedsTrafficOnAReadHeavyMix) {
  // End-to-end through the experiment harness: same workload and read-only
  // population, mv_read off vs on.  On a hot-site read-heavy mix (the
  // ablation_mvread regime) the snapshot path must commit the same families
  // while sending strictly less traffic, with every lock round of the
  // read-only families gone.
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 60;
  const Workload workload(spec);

  ExperimentOptions options;
  options.nodes = 8;
  options.max_active_families = 1;
  options.site_locality = 0.9;
  options.read_only_fraction = 0.9;
  const ScenarioResult off =
      run_scenario(workload, ProtocolKind::kLotec, options);
  options.mv_read = true;
  const ScenarioResult on =
      run_scenario(workload, ProtocolKind::kLotec, options);

  EXPECT_EQ(on.committed + on.aborted, off.committed + off.aborted);
  EXPECT_GT(on.counter("snapshot.reads"), 0u);
  EXPECT_LT(on.counter("net.lock_messages"), off.counter("net.lock_messages"));
  EXPECT_LT(on.total.messages, off.total.messages);
}

}  // namespace
}  // namespace lotec
