// Network substrate: message sizing, NetworkStats accounting (per kind,
// per object, local ops), Transport reachability/multicast, and the
// Figure 6-8 cost-model arithmetic.
#include <gtest/gtest.h>

#include "net/cost_model.hpp"
#include "net/transport.hpp"

namespace lotec {
namespace {

TEST(WireMessageTest, TotalBytesIncludeHeader) {
  WireMessage m{MessageKind::kPageFetchReply, NodeId(0), NodeId(1),
                ObjectId(7), 4096};
  EXPECT_EQ(m.total_bytes(), 4096u + wire::kHeaderBytes);
}

TEST(WireMessageTest, PageDataClassification) {
  EXPECT_TRUE(carries_page_data(MessageKind::kPageFetchReply));
  EXPECT_TRUE(carries_page_data(MessageKind::kUpdatePush));
  EXPECT_TRUE(carries_page_data(MessageKind::kDemandFetchReply));
  EXPECT_FALSE(carries_page_data(MessageKind::kLockAcquireRequest));
  EXPECT_FALSE(carries_page_data(MessageKind::kPageFetchRequest));
  EXPECT_FALSE(carries_page_data(MessageKind::kGdoReplicaSync));
}

TEST(NetworkStatsTest, RecordsTotalsAndKinds) {
  NetworkStats stats;
  stats.record({MessageKind::kLockAcquireRequest, NodeId(0), NodeId(1),
                ObjectId(1), 24});
  stats.record({MessageKind::kPageFetchReply, NodeId(1), NodeId(0),
                ObjectId(1), 4096});
  EXPECT_EQ(stats.total().messages, 2u);
  EXPECT_EQ(stats.total().bytes, 24 + 4096 + 2 * wire::kHeaderBytes);
  EXPECT_EQ(stats.by_kind(MessageKind::kLockAcquireRequest).messages, 1u);
  EXPECT_EQ(stats.by_kind(MessageKind::kPageFetchReply).bytes,
            4096 + wire::kHeaderBytes);
  EXPECT_EQ(stats.by_kind(MessageKind::kUpdatePush).messages, 0u);
}

TEST(NetworkStatsTest, PerObjectAttribution) {
  NetworkStats stats;
  stats.record({MessageKind::kPageFetchReply, NodeId(0), NodeId(1),
                ObjectId(1), 100});
  stats.record({MessageKind::kLockAcquireRequest, NodeId(0), NodeId(1),
                ObjectId(1), 24});
  stats.record({MessageKind::kPageFetchReply, NodeId(0), NodeId(1),
                ObjectId(2), 200});
  EXPECT_EQ(stats.by_object(ObjectId(1)).messages, 2u);
  EXPECT_EQ(stats.by_object(ObjectId(2)).messages, 1u);
  EXPECT_EQ(stats.by_object(ObjectId(3)).messages, 0u);
  // Page-data view excludes the lock message.
  EXPECT_EQ(stats.page_data_by_object(ObjectId(1)).messages, 1u);
  EXPECT_EQ(stats.page_data_by_object(ObjectId(1)).bytes,
            100 + wire::kHeaderBytes);
}

TEST(NetworkStatsTest, UnattributedMessagesOnlyCountInTotals) {
  NetworkStats stats;
  stats.record({MessageKind::kGdoReplicaSync, NodeId(0), NodeId(1),
                ObjectId{}, 64});
  EXPECT_EQ(stats.total().messages, 1u);
  EXPECT_TRUE(stats.per_object().empty());
}

TEST(NetworkStatsTest, MulticastCountsOnceWhenCapable) {
  NetworkStats stats;
  const WireMessage m{MessageKind::kUpdatePush, NodeId(0), NodeId(0),
                      ObjectId(1), 4096};
  stats.record_multicast(m, 5, /*multicast_capable=*/true);
  EXPECT_EQ(stats.total().messages, 1u);
  stats.reset();
  stats.record_multicast(m, 5, /*multicast_capable=*/false);
  EXPECT_EQ(stats.total().messages, 5u);
}

TEST(NetworkStatsTest, LocalLockOpsSeparate) {
  NetworkStats stats;
  stats.record_local_lock_op();
  stats.record_local_lock_op();
  EXPECT_EQ(stats.local_lock_ops(), 2u);
  EXPECT_EQ(stats.total().messages, 0u);
  stats.reset();
  EXPECT_EQ(stats.local_lock_ops(), 0u);
}

TEST(TransportTest, LocalMessagesAreFree) {
  Transport t(4);
  t.send({MessageKind::kLockAcquireRequest, NodeId(2), NodeId(2), ObjectId(1),
          24});
  EXPECT_EQ(t.stats().total().messages, 0u);
  t.send({MessageKind::kLockAcquireRequest, NodeId(2), NodeId(3), ObjectId(1),
          24});
  EXPECT_EQ(t.stats().total().messages, 1u);
}

TEST(TransportTest, FailedNodeUnreachable) {
  Transport t(4);
  t.set_node_failed(NodeId(1), true);
  EXPECT_FALSE(t.reachable(NodeId(1)));
  EXPECT_THROW(t.send({MessageKind::kGdoLookupRequest, NodeId(0), NodeId(1),
                       ObjectId(1), 8}),
               NodeUnreachable);
  t.set_node_failed(NodeId(1), false);
  EXPECT_TRUE(t.reachable(NodeId(1)));
  EXPECT_NO_THROW(t.send({MessageKind::kGdoLookupRequest, NodeId(0),
                          NodeId(1), ObjectId(1), 8}));
}

TEST(TransportTest, SendToAllSkipsSelfAndUsesMulticast) {
  Transport uni(4);
  uni.send_to_all({MessageKind::kUpdatePush, NodeId(0), NodeId(0),
                   ObjectId(1), 100},
                  {NodeId(0), NodeId(1), NodeId(2), NodeId(3)});
  EXPECT_EQ(uni.stats().total().messages, 3u);  // self skipped

  Transport mc(4, NetworkConfig{.multicast_capable = true});
  mc.send_to_all({MessageKind::kUpdatePush, NodeId(0), NodeId(0), ObjectId(1),
                  100},
                 {NodeId(1), NodeId(2), NodeId(3)});
  EXPECT_EQ(mc.stats().total().messages, 1u);
}

TEST(TransportTest, BadNodeIdsThrow) {
  Transport t(2);
  EXPECT_THROW(t.send({MessageKind::kGdoLookupRequest, NodeId(0), NodeId(5),
                       ObjectId(1), 8}),
               UsageError);
  EXPECT_THROW((void)t.reachable(NodeId{}), UsageError);
}

TEST(CostModelTest, MessageTimeArithmetic) {
  // 10 Mbps, 100us software cost: 1250-byte message = 100us + 1ms.
  const NetworkCostModel m(10e6, 100.0);
  EXPECT_DOUBLE_EQ(m.message_time_us(1250), 100.0 + 1000.0);
  // Aggregate form matches per-message sum.
  EXPECT_DOUBLE_EQ(m.total_time_us(3, 3 * 1250),
                   3 * m.message_time_us(1250));
}

TEST(CostModelTest, SoftwareCostDominatesOnFastNetworks) {
  const NetworkCostModel gige(NetworkCostModel::kEthernet1Gbps, 100.0);
  // A 64-byte control message: transmission ~0.5us vs 100us software.
  EXPECT_GT(gige.message_time_us(64), 100.0);
  EXPECT_LT(gige.message_time_us(64), 101.0);
}

TEST(CostModelTest, SweepMatchesPaper) {
  const auto sweep = NetworkCostModel::software_cost_sweep_us();
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_DOUBLE_EQ(sweep[0], 100.0);
  EXPECT_DOUBLE_EQ(sweep[4], 0.5);
}

}  // namespace
}  // namespace lotec
