// Workload generator: determinism, script structure (pre-order indices,
// hierarchy constraint, abort leaves), instantiation and execution.
#include <gtest/gtest.h>

#include <functional>

#include "workload/generator.hpp"

namespace lotec {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.num_objects = 10;
  spec.min_pages = 1;
  spec.max_pages = 4;
  spec.num_transactions = 40;
  spec.max_depth = 3;
  spec.child_probability = 0.5;
  spec.contention_theta = 0.6;
  spec.seed = 77;
  return spec;
}

TEST(WorkloadTest, DeterministicForSameSpec) {
  const Workload a(small_spec());
  const Workload b(small_spec());
  ASSERT_EQ(a.scripts().size(), b.scripts().size());
  for (std::size_t i = 0; i < a.scripts().size(); ++i) {
    const auto& sa = a.scripts()[i]->nodes;
    const auto& sb = b.scripts()[i]->nodes;
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j].object, sb[j].object);
      EXPECT_EQ(sa[j].method, sb[j].method);
      EXPECT_EQ(sa[j].children, sb[j].children);
    }
  }
  WorkloadSpec other = small_spec();
  other.seed = 78;
  const Workload c(other);
  bool different = c.scripts().size() != a.scripts().size();
  for (std::size_t i = 0; !different && i < a.scripts().size(); ++i)
    different = a.scripts()[i]->nodes.size() != c.scripts()[i]->nodes.size() ||
                a.scripts()[i]->nodes[0].object !=
                    c.scripts()[i]->nodes[0].object;
  EXPECT_TRUE(different);
}

TEST(WorkloadTest, ScriptsArePreOrderWithValidChildren) {
  const Workload w(small_spec());
  for (const auto& script : w.scripts()) {
    const auto& nodes = script->nodes;
    ASSERT_FALSE(nodes.empty());
    // Walk the tree from the root; pre-order position must equal index.
    std::size_t expected = 0;
    const std::function<void(std::size_t)> visit = [&](std::size_t idx) {
      EXPECT_EQ(idx, expected);
      ++expected;
      for (const std::size_t child : nodes[idx].children) {
        ASSERT_LT(child, nodes.size());
        ASSERT_GT(child, idx);  // children come after their parent
        visit(child);
      }
    };
    visit(0);
    EXPECT_EQ(expected, nodes.size());  // every node reachable exactly once
  }
}

TEST(WorkloadTest, HierarchicalTargetsIncreaseAlongPaths) {
  const Workload w(small_spec());
  for (const auto& script : w.scripts()) {
    const auto& nodes = script->nodes;
    const std::function<void(std::size_t)> visit = [&](std::size_t idx) {
      for (const std::size_t child : nodes[idx].children) {
        EXPECT_GT(nodes[child].object, nodes[idx].object);
        visit(child);
      }
    };
    visit(0);
  }
}

TEST(WorkloadTest, AbortNodesAreChildLeaves) {
  WorkloadSpec spec = small_spec();
  spec.abort_probability = 0.3;
  const Workload w(spec);
  std::size_t abort_nodes = 0;
  for (const auto& script : w.scripts()) {
    EXPECT_FALSE(script->nodes[0].inject_abort);  // never the root
    for (const auto& node : script->nodes) {
      if (!node.inject_abort) continue;
      ++abort_nodes;
      EXPECT_TRUE(node.children.empty());
    }
  }
  EXPECT_GT(abort_nodes, 0u);
}

TEST(WorkloadTest, RejectsBadSpecs) {
  WorkloadSpec spec = small_spec();
  spec.num_objects = 0;
  EXPECT_THROW(Workload{spec}, UsageError);
  spec = small_spec();
  spec.min_pages = 5;
  spec.max_pages = 3;
  EXPECT_THROW(Workload{spec}, UsageError);
  spec = small_spec();
  spec.attrs_per_page = 0;
  EXPECT_THROW(Workload{spec}, UsageError);
}

TEST(WorkloadTest, InstantiateAndExecuteCommitsEverything) {
  const Workload w(small_spec());
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 3;
  Cluster cluster(cfg);
  auto requests = w.instantiate(cluster);
  ASSERT_EQ(requests.size(), w.spec().num_transactions);
  const auto results = cluster.execute(std::move(requests));
  std::size_t committed = 0;
  for (const auto& r : results) committed += r.committed ? 1 : 0;
  EXPECT_EQ(committed, results.size());
  // Transactions actually nested: total txns > roots.
  std::uint64_t total_txns = 0;
  for (const auto& r : results) total_txns += r.txns_in_tree;
  EXPECT_EQ(total_txns, w.total_script_nodes());
}

TEST(WorkloadTest, InjectedAbortsRollBackButFamiliesCommit) {
  WorkloadSpec spec = small_spec();
  spec.abort_probability = 0.25;
  const Workload w(spec);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kOtec;
  cfg.seed = 3;
  Cluster cluster(cfg);
  const auto results = cluster.execute(w.instantiate(cluster));
  for (const auto& r : results) EXPECT_TRUE(r.committed);
}

TEST(WorkloadTest, PageSizeMustMatchAttrGranularity) {
  const Workload w(small_spec());
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 100;  // not divisible into 8-byte-aligned quarters
  Cluster cluster(cfg);
  EXPECT_THROW((void)w.instantiate(cluster), UsageError);
}

TEST(WorkloadTest, OptimisticPredictionDrivesDemandFetches) {
  WorkloadSpec spec = small_spec();
  spec.min_pages = 4;
  spec.max_pages = 8;
  spec.prediction_coverage = 0.5;
  spec.touched_attr_fraction = 0.5;
  const Workload w(spec);
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 3;
  Cluster cluster(cfg);
  const auto results = cluster.execute(w.instantiate(cluster));
  std::uint64_t demand = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.committed);
    demand += r.demand_fetches;
  }
  EXPECT_GT(demand, 0u);
}

}  // namespace
}  // namespace lotec
