// Cluster public API: configuration validation, object/class management
// edge cases, peeks, empty batches, sequential execute calls, failover.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

namespace lotec {
namespace {

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 64;
  cfg.seed = 17;
  return cfg;
}

ClassBuilder cell(std::uint32_t page_size) {
  return ClassBuilder("Cell", page_size)
      .attribute("v", 8)
      .attribute("name", 24)
      .method("bump", {"v"}, {"v"},
              [](MethodContext& ctx) {
                ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
              })
      .method("christen", {}, {"name"}, [](MethodContext& ctx) {
        ctx.set_string("name", "alice");
      });
}

TEST(ClusterApiTest, RejectsZeroNodes) {
  ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(Cluster{cfg}, UsageError);
}

TEST(ClusterApiTest, SingleNodeClusterIsAllLocal) {
  ClusterConfig cfg = cfg4();
  cfg.nodes = 1;
  Cluster cluster(cfg);
  const ObjectId obj =
      cluster.create_object(cluster.define_class(cell(cfg.page_size)));
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "bump").committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 5);
  EXPECT_EQ(cluster.stats().total().messages, 0u);  // nothing leaves the node
}

TEST(ClusterApiTest, ClassAndObjectLookups) {
  Cluster cluster(cfg4());
  const ClassId cls = cluster.define_class(cell(64));
  EXPECT_EQ(cluster.find_class("Cell"), cls);
  EXPECT_THROW((void)cluster.find_class("Nope"), UsageError);
  EXPECT_EQ(cluster.class_def(cls).name(), "Cell");

  const ObjectId obj = cluster.create_object(cls, NodeId(2));
  EXPECT_EQ(cluster.meta_of(obj).creator, NodeId(2));
  EXPECT_EQ(cluster.meta_of(obj).cls, cls);
  EXPECT_THROW((void)cluster.meta_of(ObjectId(99)), UsageError);
  EXPECT_THROW(cluster.create_object(cls, NodeId(9)), UsageError);
  EXPECT_THROW((void)cluster.method_id(obj, "nope"), UsageError);
}

TEST(ClusterApiTest, RoundRobinPlacementSpreadsObjects) {
  Cluster cluster(cfg4());
  const ClassId cls = cluster.define_class(cell(64));
  std::set<std::uint32_t> creators;
  for (int i = 0; i < 4; ++i)
    creators.insert(cluster.meta_of(cluster.create_object(cls))
                        .creator.value());
  EXPECT_EQ(creators.size(), 4u);
}

TEST(ClusterApiTest, EmptyExecuteIsFine) {
  Cluster cluster(cfg4());
  EXPECT_TRUE(cluster.execute({}).empty());
}

TEST(ClusterApiTest, SequentialExecuteBatchesAccumulateState) {
  Cluster cluster(cfg4());
  const ObjectId obj = cluster.create_object(cluster.define_class(cell(64)));
  const MethodId bump = cluster.method_id(obj, "bump");
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<RootRequest> reqs;
    for (int i = 0; i < 7; ++i)
      reqs.push_back(RootRequest{obj, bump, NodeId{}, {}, nullptr});
    for (const auto& r : cluster.execute(std::move(reqs)))
      ASSERT_TRUE(r.committed);
  }
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 21);
}

TEST(ClusterApiTest, PeekStringAndTypedPeeks) {
  Cluster cluster(cfg4());
  const ObjectId obj = cluster.create_object(cluster.define_class(cell(64)));
  ASSERT_TRUE(cluster.run_root(obj, "christen", NodeId(3)).committed);
  EXPECT_EQ(cluster.peek_string(obj, "name"), "alice");
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 0);
  EXPECT_THROW((void)cluster.peek<std::int64_t>(obj, "missing"), UsageError);
}

TEST(ClusterApiTest, PeekGathersScatteredPagesUnderLotec) {
  // Under LOTEC the newest pages of one object end up on different sites;
  // peek must assemble the newest version of each page.
  ClusterConfig cfg = cfg4();
  cfg.protocol = ProtocolKind::kLotec;
  Cluster cluster(cfg);
  ClassBuilder b("TwoPage", cfg.page_size);
  b.attribute("p0", 64).attribute("p1", 64);
  b.method("w0", {"p0"}, {"p0"},
           [](MethodContext& ctx) { ctx.set<std::int64_t>("p0", 10); });
  b.method("w1", {"p1"}, {"p1"},
           [](MethodContext& ctx) { ctx.set<std::int64_t>("p1", 20); });
  const ObjectId obj = cluster.create_object(cluster.define_class(b),
                                             NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "w0", NodeId(1)).committed);
  ASSERT_TRUE(cluster.run_root(obj, "w1", NodeId(2)).committed);
  // Newest p0 now lives on node 1, newest p1 on node 2.
  const GdoEntry e = cluster.gdo().snapshot(obj);
  EXPECT_EQ(e.page_map.at(PageIndex(0)).node, NodeId(1));
  EXPECT_EQ(e.page_map.at(PageIndex(1)).node, NodeId(2));
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "p0"), 10);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "p1"), 20);
}

TEST(ClusterApiTest, GdoFailoverKeepsClusterRunning) {
  ClusterConfig cfg = cfg4();
  cfg.gdo.replicate = true;
  Cluster cluster(cfg);
  const ObjectId obj = cluster.create_object(cluster.define_class(cell(64)),
                                             NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);

  // Fail the object's GDO home.  As long as transactions run at surviving
  // nodes and the failed node holds no needed newest pages, work continues
  // against the mirror.
  const NodeId home = cluster.gdo().home_of(obj);
  const NodeId survivor((home.value() + 2) % 4);
  // Make sure the newest copy is NOT on the home we kill.
  ASSERT_TRUE(cluster.run_root(obj, "bump", survivor).committed);
  cluster.transport().set_node_failed(home, true);
  ASSERT_TRUE(cluster.run_root(obj, "bump", survivor).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "v"), 3);
}

TEST(ClusterApiTest, ResultsAlignWithRequests) {
  Cluster cluster(cfg4());
  const ObjectId obj = cluster.create_object(cluster.define_class(cell(64)));
  const ClassId aborter = cluster.define_class(
      ClassBuilder("Aborter", 64)
          .attribute("x", 8)
          .method("die", {}, {}, [](MethodContext& ctx) { ctx.abort(); }));
  const ObjectId ab = cluster.create_object(aborter);

  std::vector<RootRequest> reqs;
  reqs.push_back(
      RootRequest{obj, cluster.method_id(obj, "bump"), NodeId{}, {}, nullptr});
  reqs.push_back(
      RootRequest{ab, cluster.method_id(ab, "die"), NodeId{}, {}, nullptr});
  reqs.push_back(
      RootRequest{obj, cluster.method_id(obj, "bump"), NodeId{}, {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].committed);
  EXPECT_FALSE(results[1].committed);
  EXPECT_TRUE(results[2].committed);
}

}  // namespace
}  // namespace lotec
