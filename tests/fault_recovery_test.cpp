// End-to-end fault injection and recovery: node crashes parked inside a
// commit's release batch and inside a page gather, partition windows, and
// bit-for-bit reproducibility of chaos runs under the token scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/validate.hpp"

namespace lotec {
namespace {

/// A one-page counter class: `increment` bumps `value`.
ClassId define_counter(Cluster& cluster, std::uint32_t page_size) {
  return cluster.define_class(
      ClassBuilder("Counter", page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("value",
                                  ctx.get<std::int64_t>("value") + 1);
          }));
}

/// `count` increment requests on `obj`, round-robin over `nodes` sites.
std::vector<RootRequest> increment_batch(Cluster& cluster, ObjectId obj,
                                         int count, std::size_t nodes) {
  const MethodId m = cluster.method_id(obj, "increment");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < count; ++i)
    reqs.push_back({obj, m,
                    NodeId(static_cast<std::uint32_t>(i % nodes)),
                    {},
                    nullptr});
  return reqs;
}

/// Every family must end in one of the honest terminal states: committed,
/// or aborted with a failure-class reason.
void expect_clean_outcomes(const std::vector<TxnResult>& results) {
  for (const TxnResult& r : results) {
    if (r.committed) {
      EXPECT_FALSE(r.crashed_in_commit);
      continue;
    }
    EXPECT_TRUE(r.reason == AbortReason::kNodeFailure ||
                r.reason == AbortReason::kRetryExhausted)
        << "unexpected abort reason: " << to_string(r.reason);
  }
}

TEST(FaultRecoveryTest, CrashDuringCommitYieldsHonestPartialResult) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.gdo.replicate = true;
  // Crash whichever site is sending the third global release: the crash
  // lands after commit processing began, mid release batch.
  FaultEvent ev;
  ev.action = FaultAction::kCrashNode;
  ev.on_kind = MessageKind::kLockReleaseRequest;
  ev.nth = 3;
  ev.target = FaultTarget::kMessageSrc;
  cfg.fault.events = {ev};
  Cluster cluster(cfg);

  const ClassId cls = define_counter(cluster, cfg.page_size);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const auto results =
      cluster.execute(increment_batch(cluster, obj, 12, cfg.nodes));

  expect_clean_outcomes(results);
  const auto committed = static_cast<std::int64_t>(
      std::count_if(results.begin(), results.end(),
                    [](const TxnResult& r) { return r.committed; }));
  const auto crashed_in_commit = static_cast<std::int64_t>(
      std::count_if(results.begin(), results.end(),
                    [](const TxnResult& r) { return r.crashed_in_commit; }));
  // The family whose release triggered the crash is reported failed without
  // retry; whether its stamps landed is undefined-but-consistent.
  EXPECT_EQ(crashed_in_commit, 1);
  EXPECT_GE(committed, 2);  // the two releases before the crash
  const std::int64_t value = cluster.peek<std::int64_t>(obj, "value");
  EXPECT_GE(value, committed);
  EXPECT_LE(value, committed + crashed_in_commit);

  // finalize() restarted the dead site: the cluster must be quiescent.
  EXPECT_TRUE(validate_quiescent(cluster).empty());
  EXPECT_EQ(cluster.fault_engine()->stats().crashes, 1u);
  EXPECT_GE(cluster.fault_engine()->stats().restarts, 1u);
}

TEST(FaultRecoveryTest, CrashDuringPageGatherRecoversAfterRestart) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 64;
  cfg.gdo.replicate = true;
  // All pages start at the creating site (node 0).  Crash it on the second
  // page-fetch request — mid gather — and bring it back at tick 80 so the
  // blocked families' retries eventually find the pages restored from the
  // durable journal.
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.on_kind = MessageKind::kPageFetchRequest;
  crash.nth = 2;
  crash.node = NodeId(0);
  FaultEvent restart;
  restart.action = FaultAction::kRestartNode;
  restart.at_tick = 80;
  restart.node = NodeId(0);
  cfg.fault.events = {crash, restart};
  Cluster cluster(cfg);

  // A three-page object so a gather is a real multi-page transfer.
  const ClassId cls = cluster.define_class(
      ClassBuilder("Triple", cfg.page_size)
          .attribute("a", 64)
          .attribute("b", 64)
          .attribute("c", 64)
          .method("fold", {"a", "b", "c"}, {"a"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>(
                "a", ctx.get<std::int64_t>("a") + ctx.get<std::int64_t>("b") +
                         ctx.get<std::int64_t>("c") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  // Families at the surviving sites only: every gather crosses the wire.
  const MethodId m = cluster.method_id(obj, "fold");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 18; ++i)
    reqs.push_back(
        {obj, m, NodeId(static_cast<std::uint32_t>(1 + i % 3)), {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));

  expect_clean_outcomes(results);
  const auto committed = static_cast<std::int64_t>(
      std::count_if(results.begin(), results.end(),
                    [](const TxnResult& r) { return r.committed; }));
  // b and c stay zero, so `a` counts exactly the committed folds.
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "a"), committed);
  EXPECT_GT(committed, 0);
  // The crash disturbed at least one family into a fault retry.
  std::int64_t retries = 0;
  for (const TxnResult& r : results) retries += r.fault_retries;
  EXPECT_GT(retries, 0);

  EXPECT_TRUE(validate_quiescent(cluster).empty());
  const FaultStats fs = cluster.fault_engine()->stats();
  EXPECT_EQ(fs.crashes, 1u);
  EXPECT_GE(fs.restarts, 1u);
}

TEST(FaultRecoveryTest, TransientPartitionWindowRetriesToFullCommit) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.fault = fault_presets::partition_window({NodeId(0)}, {NodeId(2)},
                                              /*start_tick=*/10,
                                              /*heal_tick=*/40);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  // Node 2 must cross the cut to reach the pages at node 0.
  const MethodId m = cluster.method_id(obj, "increment");
  std::vector<RootRequest> reqs;
  for (int i = 0; i < 16; ++i)
    reqs.push_back({obj, m, NodeId(i % 2 ? 2u : 0u), {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));

  // A partition is transient: abort-and-retry rides it out, nobody dies.
  for (const TxnResult& r : results) EXPECT_TRUE(r.committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 16);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
  EXPECT_GT(cluster.fault_engine()->stats().partition_drops, 0u);
}

/// One seeded chaos run: crash + restart the directory home of the hot
/// object and a page-holding bystander mid-workload, with background drop.
struct ChaosOutcome {
  std::vector<TraceEvent> messages;
  std::vector<FaultRecord> faults;
  std::vector<std::pair<bool, AbortReason>> outcomes;
  std::int64_t value = 0;
  std::uint64_t crashes = 0;

  friend bool operator==(const ChaosOutcome&, const ChaosOutcome&) = default;
};

ChaosOutcome run_chaos(std::uint64_t seed, NodeId home, NodeId holder) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.seed = seed;
  cfg.gdo.replicate = true;
  cfg.fault = fault_presets::chaos(home, holder, seed,
                                   /*first_crash_tick=*/40, /*window=*/60,
                                   /*drop=*/0.02);
  Cluster cluster(cfg);
  const ClassId cls = define_counter(cluster, cfg.page_size);
  const ObjectId obj = cluster.create_object(cls, holder);
  cluster.stats().enable_trace(1 << 20);

  const auto results =
      cluster.execute(increment_batch(cluster, obj, 48, cfg.nodes));

  ChaosOutcome out;
  out.messages = cluster.stats().trace();
  out.faults = cluster.fault_engine()->trace();
  for (const TxnResult& r : results)
    out.outcomes.emplace_back(r.committed, r.reason);
  out.value = cluster.peek<std::int64_t>(obj, "value");
  out.crashes = cluster.fault_engine()->stats().crashes;
  return out;
}

TEST(FaultRecoveryTest, ChaosRunsAreByteIdenticalAcrossSameSeedRuns) {
  // The directory home is a pure hash of the object id, so probe it once
  // with a fault-free cluster and aim the chaos at (home, page holder).
  ClusterConfig probe_cfg;
  probe_cfg.nodes = 4;
  probe_cfg.page_size = 256;
  Cluster probe(probe_cfg);
  const ClassId probe_cls = define_counter(probe, probe_cfg.page_size);
  const NodeId home = probe.gdo().home_of(
      probe.create_object(probe_cls, NodeId(0)));
  const NodeId holder((home.value() + 2) % 4);  // a non-home creator site

  const ChaosOutcome a = run_chaos(7, home, holder);
  const ChaosOutcome b = run_chaos(7, home, holder);
  EXPECT_EQ(a, b);  // same seed: same messages, faults and outcomes

  // The run was genuinely chaotic and still wound down cleanly.
  EXPECT_GE(a.crashes, 1u);
  EXPECT_FALSE(a.faults.empty());
  std::int64_t committed = 0;
  for (const auto& [ok, reason] : a.outcomes) committed += ok ? 1 : 0;
  EXPECT_GT(committed, 0);
  EXPECT_GE(a.value, committed);

  const ChaosOutcome c = run_chaos(8, home, holder);
  EXPECT_NE(a.messages, c.messages);  // different seed: different run
}

}  // namespace
}  // namespace lotec
