// Message tracing: recording fidelity, capacity bounds, CSV round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/cluster.hpp"
#include "sim/trace.hpp"

namespace lotec {
namespace {

TEST(TraceTest, RecordsEveryMessageWithMatchingTotals) {
  NetworkStats stats;
  stats.enable_trace(100);
  stats.record({MessageKind::kLockAcquireRequest, NodeId(0), NodeId(1),
                ObjectId(5), 24});
  stats.record({MessageKind::kPageFetchReply, NodeId(1), NodeId(0),
                ObjectId(5), 4096});
  stats.record_multicast({MessageKind::kUpdatePush, NodeId(0), NodeId(0),
                          ObjectId(6), 100},
                         3, /*multicast=*/false);
  const auto trace = stats.trace();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.size(), stats.total().messages);
  std::uint64_t traced_bytes = 0;
  for (const auto& e : trace) traced_bytes += e.total_bytes;
  EXPECT_EQ(traced_bytes, stats.total().bytes);
  EXPECT_EQ(trace[0].kind, MessageKind::kLockAcquireRequest);
  EXPECT_EQ(trace[0].payload_bytes, 24u);
  EXPECT_EQ(trace[1].total_bytes, 4096 + wire::kHeaderBytes);
  EXPECT_EQ(stats.trace_dropped(), 0u);
}

TEST(TraceTest, CapacityBoundsRecordingAndCountsDrops) {
  NetworkStats stats;
  stats.enable_trace(3);
  for (int i = 0; i < 10; ++i)
    stats.record({MessageKind::kGdoLookupRequest, NodeId(0), NodeId(1),
                  ObjectId(1), 8});
  EXPECT_EQ(stats.trace().size(), 3u);
  EXPECT_EQ(stats.trace_dropped(), 7u);
  EXPECT_EQ(stats.total().messages, 10u);  // counters unaffected
}

TEST(TraceTest, DisabledByDefault) {
  NetworkStats stats;
  stats.record({MessageKind::kGdoLookupRequest, NodeId(0), NodeId(1),
                ObjectId(1), 8});
  EXPECT_TRUE(stats.trace().empty());
}

TEST(TraceTest, CsvRoundTrip) {
  std::vector<TraceEvent> events;
  events.push_back({1, MessageKind::kLockAcquireRequest, NodeId(0), NodeId(3),
                    ObjectId(9), 24, 88});
  events.push_back({2, MessageKind::kGdoReplicaSync, NodeId(1), NodeId(2),
                    ObjectId{}, 64, 128});  // unattributed object
  std::stringstream ss;
  dump_trace_csv(events, ss);
  const auto parsed = load_trace_csv(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, 1u);
  EXPECT_EQ(parsed[0].kind, MessageKind::kLockAcquireRequest);
  EXPECT_EQ(parsed[0].src, NodeId(0));
  EXPECT_EQ(parsed[0].dst, NodeId(3));
  EXPECT_EQ(parsed[0].object, ObjectId(9));
  EXPECT_EQ(parsed[0].payload_bytes, 24u);
  EXPECT_EQ(parsed[0].total_bytes, 88u);
  EXPECT_EQ(parsed[1].seq, 2u);
  EXPECT_FALSE(parsed[1].object.valid());
  EXPECT_EQ(parsed[1].kind, MessageKind::kGdoReplicaSync);
  // Whole-struct round trip: every TraceEvent field survives the CSV.
  EXPECT_EQ(parsed, events);
}

TEST(TraceTest, LoadRejectsMalformedCsv) {
  {
    std::stringstream ss("bogus header\n");
    EXPECT_THROW((void)load_trace_csv(ss), UsageError);
  }
  {
    std::stringstream ss(
        "seq,kind,src,dst,object,payload_bytes,total_bytes\n1,NotAKind,0,1,"
        "2,3,4\n");
    EXPECT_THROW((void)load_trace_csv(ss), UsageError);
  }
  {
    std::stringstream ss(
        "seq,kind,src,dst,object,payload_bytes,total_bytes\n1,UpdatePush,0\n");
    EXPECT_THROW((void)load_trace_csv(ss), UsageError);
  }
}

TEST(TraceTest, ClusterTraceMatchesCounters) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 64;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 5;
  Cluster cluster(cfg);
  cluster.stats().enable_trace(10000);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", 64).attribute("v", 8).method(
          "bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(i % 4)).committed);

  const auto trace = cluster.stats().trace();
  EXPECT_EQ(trace.size(), cluster.stats().total().messages);
  std::uint64_t object_bytes = 0;
  for (const auto& e : trace)
    if (e.object == obj) object_bytes += e.total_bytes;
  EXPECT_EQ(object_bytes, cluster.stats().by_object(obj).bytes);
}

}  // namespace
}  // namespace lotec
