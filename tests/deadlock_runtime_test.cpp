// End-to-end deadlock handling: constructed cross-family deadlocks are
// detected, a victim is aborted and retried, and every family eventually
// commits with intact state — under both scheduler disciplines.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

namespace lotec {
namespace {

/// Payload telling the driver method which two accounts to lock, in order.
struct TwoLockPlan {
  ObjectId first;
  ObjectId second;
};

class DeadlockRuntimeTest : public ::testing::TestWithParam<SchedulerMode> {};

TEST_P(DeadlockRuntimeTest, OpposingLockOrdersResolve) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.page_size = 64;
  cfg.seed = 5;
  cfg.scheduler = GetParam();
  Cluster cluster(cfg);

  const ClassId cell = cluster.define_class(
      ClassBuilder("Cell", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId a = cluster.create_object(cell, NodeId(0));
  const ObjectId b = cluster.create_object(cell, NodeId(1));

  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", cfg.page_size)
          .attribute("pad", 8)
          .method("run_both", {}, {}, [](MethodContext& ctx) {
            const auto* plan =
                static_cast<const TwoLockPlan*>(ctx.user_data());
            ASSERT_NE(plan, nullptr);
            ASSERT_TRUE(ctx.invoke(plan->first, "bump"));
            ASSERT_TRUE(ctx.invoke(plan->second, "bump"));
          }));
  const ObjectId d0 = cluster.create_object(driver, NodeId(0));
  const ObjectId d1 = cluster.create_object(driver, NodeId(1));

  // Many pairs of families locking (a,b) and (b,a) — a deadlock factory.
  std::vector<RootRequest> reqs;
  const MethodId run_both = cluster.method_id(d0, "run_both");
  for (int i = 0; i < 20; ++i) {
    RootRequest fwd{d0, run_both, NodeId(0), {}, nullptr};
    fwd.user_data = std::make_shared<TwoLockPlan>(TwoLockPlan{a, b});
    RootRequest rev{d1, run_both, NodeId(1), {}, nullptr};
    rev.user_data = std::make_shared<TwoLockPlan>(TwoLockPlan{b, a});
    reqs.push_back(std::move(fwd));
    reqs.push_back(std::move(rev));
  }

  const auto results = cluster.execute(std::move(reqs));
  std::uint64_t retries = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.committed);
    retries += static_cast<std::uint64_t>(r.deadlock_retries);
  }
  // Both cells incremented once per committed family.
  EXPECT_EQ(cluster.peek<std::int64_t>(a, "v"), 40);
  EXPECT_EQ(cluster.peek<std::int64_t>(b, "v"), 40);
  if (GetParam() == SchedulerMode::kDeterministic) {
    // The opposing orders must actually have deadlocked at least once.
    EXPECT_GT(retries, 0u);
  }
}

TEST_P(DeadlockRuntimeTest, UpgradeDeadlockResolves) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.protocol = ProtocolKind::kOtec;
  cfg.page_size = 64;
  cfg.seed = 9;
  cfg.scheduler = GetParam();
  Cluster cluster(cfg);

  const ClassId cell = cluster.define_class(
      ClassBuilder("Cell", cfg.page_size)
          .attribute("v", 8)
          .method("read", {"v"}, {},
                  [](MethodContext& ctx) { (void)ctx.get<std::int64_t>("v"); })
          .method("write", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId x = cluster.create_object(cell, NodeId(0));

  const ClassId driver = cluster.define_class(
      ClassBuilder("Driver", cfg.page_size)
          .attribute("pad", 8)
          .method("read_then_write", {}, {}, [x](MethodContext& ctx) {
            ASSERT_TRUE(ctx.invoke(x, "read"));
            ASSERT_TRUE(ctx.invoke(x, "write"));  // upgrade
          }));
  const ObjectId d0 = cluster.create_object(driver, NodeId(0));
  const ObjectId d1 = cluster.create_object(driver, NodeId(1));

  // Two families read-share x, then both try to upgrade: a deadlock only a
  // victim abort can break.
  std::vector<RootRequest> reqs;
  const MethodId m = cluster.method_id(d0, "read_then_write");
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(RootRequest{d0, m, NodeId(0), {}, nullptr});
    reqs.push_back(RootRequest{d1, m, NodeId(1), {}, nullptr});
  }
  const auto results = cluster.execute(std::move(reqs));
  for (const auto& r : results) EXPECT_TRUE(r.committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(x, "v"), 20);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, DeadlockRuntimeTest,
                         ::testing::Values(SchedulerMode::kDeterministic,
                                           SchedulerMode::kConcurrent),
                         [](const auto& info) {
                           return info.param == SchedulerMode::kDeterministic
                                      ? "Deterministic"
                                      : "Concurrent";
                         });

}  // namespace
}  // namespace lotec
