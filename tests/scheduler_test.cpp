// Schedulers: token-passing determinism, block/wake, victim delivery, and
// the concurrent scheduler's watchdog-driven victimization.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/scheduler.hpp"

namespace lotec {
namespace {

TEST(TokenSchedulerTest, RunsEveryBodyOnce) {
  TokenScheduler sched({.seed = 1, .max_active = 2, .picker = {}});
  std::vector<int> counts(5, 0);
  std::vector<std::function<void()>> bodies;
  for (int i = 0; i < 5; ++i)
    bodies.emplace_back([&counts, i] { counts[static_cast<size_t>(i)]++; });
  sched.run(std::move(bodies), nullptr);
  for (const int c : counts) EXPECT_EQ(c, 1);
}

TEST(TokenSchedulerTest, EmptyRunCompletes) {
  TokenScheduler sched({.seed = 1, .max_active = 4, .picker = {}});
  EXPECT_NO_THROW(sched.run({}, nullptr));
}

TEST(TokenSchedulerTest, InterleavingIsDeterministicPerSeed) {
  const auto trace_for = [](std::uint64_t seed) {
    TokenScheduler sched({.seed = seed, .max_active = 4, .picker = {}});
    std::vector<int> trace;
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < 6; ++i)
      bodies.emplace_back([&sched, &trace, i] {
        for (int k = 0; k < 3; ++k) {
          trace.push_back(i);
          sched.preempt(static_cast<std::size_t>(i));
        }
      });
    sched.run(std::move(bodies), nullptr);
    return trace;
  };
  const auto a = trace_for(7);
  const auto b = trace_for(7);
  const auto c = trace_for(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different interleaving
  EXPECT_EQ(a.size(), 18u);
}

TEST(TokenSchedulerTest, OnlyOneFamilyRunsAtATime) {
  TokenScheduler sched({.seed = 3, .max_active = 8, .picker = {}});
  std::atomic<int> running{0};
  std::atomic<bool> overlap{false};
  std::vector<std::function<void()>> bodies;
  for (int i = 0; i < 8; ++i)
    bodies.emplace_back([&, i] {
      for (int k = 0; k < 5; ++k) {
        if (running.fetch_add(1) != 0) overlap.store(true);
        running.fetch_sub(1);
        sched.preempt(static_cast<std::size_t>(i));
      }
    });
  sched.run(std::move(bodies), nullptr);
  EXPECT_FALSE(overlap.load());
}

TEST(TokenSchedulerTest, BlockWakeHandshake) {
  TokenScheduler sched({.seed = 1, .max_active = 2, .picker = {}});
  std::vector<int> order;
  std::vector<std::function<void()>> bodies(2);
  bodies[0] = [&] {
    order.push_back(0);
    sched.block(0);  // family 1 will wake us
    order.push_back(2);
  };
  bodies[1] = [&] {
    order.push_back(1);
    sched.wake(0);
  };
  sched.run(std::move(bodies), nullptr);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(TokenSchedulerTest, StallPicksVictimWhichThrows) {
  TokenScheduler sched({.seed = 1, .max_active = 2, .picker = {}});
  bool victimized = false;
  int stalls = 0;
  std::vector<std::function<void()>> bodies(2);
  bodies[0] = [&] {
    try {
      sched.block(0);  // nobody will wake us
    } catch (const DeadlockVictimError& e) {
      EXPECT_EQ(e.family_index(), 0u);
      victimized = true;
    }
  };
  bodies[1] = [&] { /* finishes immediately */ };
  sched.run(std::move(bodies), [&]() -> std::size_t {
    ++stalls;
    return 0;  // victimize family 0
  });
  EXPECT_TRUE(victimized);
  EXPECT_EQ(stalls, 1);
}

TEST(TokenSchedulerTest, UnresolvableStallCancelsRun) {
  TokenScheduler sched({.seed = 1, .max_active = 1, .picker = {}});
  bool saw_victim_error = false;
  std::vector<std::function<void()>> bodies(1);
  bodies[0] = [&] {
    try {
      sched.block(0);
    } catch (const DeadlockVictimError&) {
      saw_victim_error = true;  // drain path victimizes us
      EXPECT_TRUE(sched.cancelled());
    }
  };
  EXPECT_THROW(
      sched.run(std::move(bodies),
                []() -> std::size_t { return Scheduler::kNoVictim; }),
      Error);
  EXPECT_TRUE(saw_victim_error);
}

TEST(TokenSchedulerTest, MaxActiveBoundsConcurrentFamilies) {
  TokenScheduler sched({.seed = 2, .max_active = 2, .picker = {}});
  // With max_active=2 and bodies that block until woken by a later body,
  // progress requires the scheduler to only admit 2 at a time and still
  // finish: body i wakes body i-1.
  constexpr std::size_t kN = 6;
  std::vector<std::function<void()>> bodies(kN);
  for (std::size_t i = 0; i < kN; ++i)
    bodies[i] = [&sched, i] {
      if (i + 1 < kN) {
        // All but the last block; each is woken by the next admitted body.
      }
      if (i > 0) sched.wake(i - 1);
      if (i + 1 < kN) sched.block(i);
    };
  EXPECT_NO_THROW(sched.run(std::move(bodies), nullptr));
}

TEST(ConcurrentSchedulerTest, RunsBodiesInParallel) {
  ConcurrentScheduler sched({.max_active = 4});
  std::atomic<int> done{0};
  std::vector<std::function<void()>> bodies;
  for (int i = 0; i < 16; ++i) bodies.emplace_back([&] { done++; });
  sched.run(std::move(bodies), nullptr);
  EXPECT_EQ(done.load(), 16);
}

TEST(ConcurrentSchedulerTest, WakeBeforeBlockIsNotLost) {
  ConcurrentScheduler sched({.max_active = 2});
  std::vector<std::function<void()>> bodies(2);
  std::atomic<bool> woke{false};
  bodies[0] = [&] {
    while (!woke.load()) std::this_thread::yield();
    sched.block(0);  // wake already arrived: must return immediately
  };
  bodies[1] = [&] {
    sched.wake(0);
    woke.store(true);
  };
  EXPECT_NO_THROW(sched.run(std::move(bodies), nullptr));
}

TEST(ConcurrentSchedulerTest, WatchdogVictimizesBlockedFamily) {
  ConcurrentScheduler sched(
      {.max_active = 2, .watchdog_period = std::chrono::milliseconds(5)});
  std::atomic<bool> victimized{false};
  std::vector<std::function<void()>> bodies(1);
  bodies[0] = [&] {
    try {
      sched.block(0);
    } catch (const DeadlockVictimError&) {
      victimized.store(true);
    }
  };
  sched.run(std::move(bodies), [&]() -> std::size_t { return 0; });
  EXPECT_TRUE(victimized.load());
}

}  // namespace
}  // namespace lotec
