// GDO replica failover under every consistency protocol (promotion of
// examples/failover.cpp into the regression suite): kill an object's
// directory home mid-run and check lock service continues from the mirror
// with no committed update lost.
#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/cluster.hpp"

namespace lotec {
namespace {

class FailoverTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FailoverTest, LockServiceSurvivesDirectoryHomeFailure) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = GetParam();
  cfg.gdo.replicate = true;  // mirror every directory entry
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const NodeId home = cluster.gdo().home_of(obj);

  // Work from the two nodes that are neither home nor mirror, so the
  // object's newest pages never live on the node we kill.
  const NodeId a((home.value() + 2) % 4);
  const NodeId b((home.value() + 3) % 4);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed);

  cluster.transport().set_node_failed(home, true);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed)
        << "increment " << i << " failed during failover under "
        << to_string(GetParam());

  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 10);
  EXPECT_GT(cluster.stats().by_kind(MessageKind::kGdoReplicaSync).messages,
            0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FailoverTest,
                         ::testing::Values(ProtocolKind::kCotec,
                                           ProtocolKind::kOtec,
                                           ProtocolKind::kLotec,
                                           ProtocolKind::kRc),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace lotec
