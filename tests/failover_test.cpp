// GDO replica failover under every consistency protocol (promotion of
// examples/failover.cpp into the regression suite): kill an object's
// directory home mid-run and check lock service continues from the mirror
// with no committed update lost.  Also covers the lock-cache interaction:
// a site that crashes while holding only a *cached* (idle) lock must be
// reclaimed by the lease machinery like any live holder.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/validate.hpp"

namespace lotec {
namespace {

class FailoverTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FailoverTest, LockServiceSurvivesDirectoryHomeFailure) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = GetParam();
  cfg.gdo.replicate = true;  // mirror every directory entry
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));

  const NodeId home = cluster.gdo().home_of(obj);

  // Work from the two nodes that are neither home nor mirror, so the
  // object's newest pages never live on the node we kill.
  const NodeId a((home.value() + 2) % 4);
  const NodeId b((home.value() + 3) % 4);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed);

  cluster.transport().set_node_failed(home, true);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", i % 2 ? a : b).committed)
        << "increment " << i << " failed during failover under "
        << to_string(GetParam());

  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 10);
  EXPECT_GT(cluster.stats().by_kind(MessageKind::kGdoReplicaSync).messages,
            0u);
}

TEST_P(FailoverTest, CachedHolderCrashIsReclaimedByLease) {
  // Geometry probe: the directory home is a pure hash of the object id, so
  // a fault-free twin cluster reveals it before we aim the crash.
  ClusterConfig probe_cfg;
  probe_cfg.nodes = 4;
  probe_cfg.page_size = 256;
  Cluster probe(probe_cfg);
  const ClassId probe_cls = probe.define_class(
      ClassBuilder("Counter", probe_cfg.page_size)
          .attribute("value", 8)
          .method("noop", {}, {}, [](MethodContext&) {}));
  const NodeId home = probe.gdo().home_of(
      probe.create_object(probe_cls, NodeId(0)));
  // Both worker sites avoid the directory home AND the creator (node 0):
  // the creator keeps the only pre-crash page copy, and it must survive for
  // the queued family to fetch from after the reclaim.
  std::vector<NodeId> workers;
  for (std::uint32_t n = 0; n < 4; ++n)
    if (NodeId(n) != home && n != 0) workers.push_back(NodeId(n));
  const NodeId a = workers[0];  // will cache the lock, then die
  const NodeId b = workers[1];  // queued behind the dead marker

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.gdo.replicate = true;
  cfg.lock_cache = true;
  cfg.max_active_families = 1;
  // Crash `a` exactly when the second global acquire (site b's) is sent:
  // at that moment `a` is idle and holds the lock only as a cached marker.
  FaultEvent ev;
  ev.action = FaultAction::kCrashNode;
  ev.on_kind = MessageKind::kLockAcquireRequest;
  ev.nth = 2;
  ev.node = a;
  cfg.fault.events = {ev};
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_EQ(cluster.gdo().home_of(obj), home);

  const MethodId m = cluster.method_id(obj, "increment");
  std::vector<RootRequest> reqs;
  reqs.push_back({obj, m, a, {}, nullptr});
  reqs.push_back({obj, m, b, {}, nullptr});
  const auto results = cluster.execute(std::move(reqs));

  // Family 1 committed before the crash; its site then died holding the
  // lock only as a cached marker with an unflushed deferred report.  The
  // lease sweep reclaims the marker mid-run, so family 2 gets the lock and
  // commits after fault retries instead of hanging forever.
  ASSERT_TRUE(results[0].committed);
  ASSERT_TRUE(results[1].committed)
      << "queued acquire never freed under " << to_string(GetParam());
  // Family 2 was blocked by the dead marker until the lease ran out: its
  // commit took restarts, and the reclaim counter shows the sweep firing.
  EXPECT_GT(results[1].attempts, 1);
  EXPECT_GE(cluster.gdo().locks_reclaimed(), 1u);

  // Writeback semantics: the crash destroyed family 1's committed update
  // together with its unflushed report, so only family 2's increment
  // survives — and the directory stays consistent about it.
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 1);
  EXPECT_TRUE(validate_quiescent(cluster).empty());
  EXPECT_EQ(cluster.fault_engine()->stats().crashes, 1u);
  EXPECT_GE(cluster.fault_engine()->stats().restarts, 1u);
}

TEST(FailoverRebuildTest, RestartedMirrorRefreshesItsCopiesBeforeServing) {
  // Double-failover regression: home A dies, canonical mirror B serves and
  // the chain copy moves to C; then B dies too and C serves.  When B
  // restarts while A is STILL down, rebuild_node's home-driven refresh
  // (step 2) cannot consult A — yet B is the first chain candidate, so the
  // very next request routes to it.  B must adopt the newest surviving
  // chain copy (from C) before serving again; without that step every
  // request bounces as a transient NodeUnreachable until A returns.
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.gdo.replicate = true;
  cfg.fault.install_hooks = true;  // chain-walk failover + lease machinery
  Cluster cluster(cfg);

  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  const NodeId home = cluster.gdo().home_of(obj);
  const NodeId mirror((home.value() + 1) % 4);

  // Work from the two sites outside the (home, mirror) pair so the newest
  // pages always survive the directory crashes.
  std::vector<NodeId> workers;
  for (std::uint32_t n = 0; n < 4; ++n)
    if (NodeId(n) != home && NodeId(n) != mirror) workers.push_back(NodeId(n));

  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", workers[i % 2]).committed);

  // First failover: B serves from its mirror copy and pushes the mutation
  // one hop further down the chain.
  cluster.transport().set_node_failed(home, true);
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", workers[i % 2]).committed)
        << "increment " << i << " failed on the canonical mirror";

  // Second failover: B crashes (losing its directory state); the next chain
  // survivor picks up from the copy replicate_failover parked there.
  cluster.transport().set_node_failed(mirror, true);
  cluster.gdo().on_node_crash(mirror);
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", workers[i % 2]).committed)
        << "increment " << i << " failed on the second chain survivor";

  // B restarts while A is still down.  Its rebuild must pull the newest
  // chain copy for the objects it canonically mirrors — routing sends the
  // next request straight to B.
  cluster.transport().set_node_failed(mirror, false);
  const auto rebuilds_before =
      cluster.stats().by_kind(MessageKind::kGdoRebuildRequest).messages;
  (void)cluster.gdo().rebuild_node(mirror);
  EXPECT_GT(cluster.stats().by_kind(MessageKind::kGdoRebuildRequest).messages,
            rebuilds_before)
      << "restart pulled no copies though it mirrors an orphaned object";
  for (int i = 0; i < 2; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", workers[i % 2]).committed)
        << "increment " << i
        << " failed after the mirror restarted with the home still down";

  // Finally the home returns and recovers the canonical entry; no committed
  // update may have been lost across the double failover.
  cluster.transport().set_node_failed(home, false);
  EXPECT_EQ(cluster.gdo().rebuild_node(home), 1u);
  ASSERT_TRUE(cluster.run_root(obj, "increment", workers[0]).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 9);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FailoverTest,
                         ::testing::Values(ProtocolKind::kCotec,
                                           ProtocolKind::kOtec,
                                           ProtocolKind::kLotec,
                                           ProtocolKind::kRc),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace lotec
