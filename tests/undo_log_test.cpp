// UndoLog: both strategies (byte-range log, shadow pages), reverse-order
// restoration, inheritance at pre-commit (absorb), and memory accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "page/undo_log.hpp"

namespace lotec {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string read_str(const ObjectImage& img, std::uint64_t off,
                     std::size_t n) {
  std::vector<std::byte> buf(n);
  img.read_bytes(off, buf);
  return std::string(reinterpret_cast<const char*>(buf.data()), n);
}

class UndoLogTest : public ::testing::TestWithParam<UndoStrategy> {
 protected:
  ObjectImage make_image(ObjectId id = ObjectId(1)) {
    ObjectImage img(id, 4, 16);
    img.materialize_all();
    return img;
  }
  std::function<ObjectImage&(ObjectId)> resolver(ObjectImage& img) {
    return [&img](ObjectId) -> ObjectImage& { return img; };
  }
};

TEST_P(UndoLogTest, UndoRestoresSingleWrite) {
  ObjectImage img = make_image();
  img.write_bytes(3, bytes_of("AAAA"));
  UndoLog log(GetParam());
  log.before_write(img, 3, 4);
  img.write_bytes(3, bytes_of("BBBB"));
  EXPECT_EQ(read_str(img, 3, 4), "BBBB");
  log.undo(resolver(img));
  EXPECT_EQ(read_str(img, 3, 4), "AAAA");
  EXPECT_TRUE(log.empty());
}

TEST_P(UndoLogTest, OverlappingWritesRestoreInReverse) {
  ObjectImage img = make_image();
  img.write_bytes(0, bytes_of("original"));
  UndoLog log(GetParam());
  log.before_write(img, 0, 8);
  img.write_bytes(0, bytes_of("11111111"));
  log.before_write(img, 4, 4);
  img.write_bytes(4, bytes_of("2222"));
  log.undo(resolver(img));
  EXPECT_EQ(read_str(img, 0, 8), "original");
}

TEST_P(UndoLogTest, CrossPageWriteRestores) {
  ObjectImage img = make_image();
  img.write_bytes(12, bytes_of("ABCDEFGH"));  // spans pages 0-1
  UndoLog log(GetParam());
  log.before_write(img, 12, 8);
  img.write_bytes(12, bytes_of("XXXXXXXX"));
  log.undo(resolver(img));
  EXPECT_EQ(read_str(img, 12, 8), "ABCDEFGH");
}

TEST_P(UndoLogTest, AbsorbedChildUndoneByParent) {
  ObjectImage img = make_image();
  img.write_bytes(0, bytes_of("base"));

  UndoLog parent(GetParam());
  parent.before_write(img, 0, 4);
  img.write_bytes(0, bytes_of("par1"));

  UndoLog child(GetParam());
  child.before_write(img, 0, 4);
  img.write_bytes(0, bytes_of("chi1"));

  // Child pre-commits: parent inherits its undo information.
  parent.absorb(std::move(child));
  EXPECT_TRUE(child.empty());

  // Parent writes again after inheriting.
  parent.before_write(img, 0, 4);
  img.write_bytes(0, bytes_of("par2"));

  parent.undo(resolver(img));
  EXPECT_EQ(read_str(img, 0, 4), "base");
}

TEST_P(UndoLogTest, AbsorbRejectsMixedStrategies) {
  UndoLog a(UndoStrategy::kByteRange);
  UndoLog b(UndoStrategy::kShadowPage);
  EXPECT_THROW(a.absorb(std::move(b)), UsageError);
}

TEST_P(UndoLogTest, MultiObjectUndoUsesResolver) {
  ObjectImage img1(ObjectId(1), 1, 16);
  ObjectImage img2(ObjectId(2), 1, 16);
  img1.materialize_all();
  img2.materialize_all();
  img1.write_bytes(0, bytes_of("one!"));
  img2.write_bytes(0, bytes_of("two!"));

  UndoLog log(GetParam());
  log.before_write(img1, 0, 4);
  img1.write_bytes(0, bytes_of("1111"));
  log.before_write(img2, 0, 4);
  img2.write_bytes(0, bytes_of("2222"));
  log.undo([&](ObjectId id) -> ObjectImage& {
    return id == ObjectId(1) ? img1 : img2;
  });
  EXPECT_EQ(read_str(img1, 0, 4), "one!");
  EXPECT_EQ(read_str(img2, 0, 4), "two!");
}

TEST_P(UndoLogTest, ClearDropsEverything) {
  ObjectImage img = make_image();
  UndoLog log(GetParam());
  log.before_write(img, 0, 8);
  EXPECT_FALSE(log.empty());
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.memory_bytes(), 0u);
}

TEST_P(UndoLogTest, ZeroLengthWriteIsNoop) {
  ObjectImage img = make_image();
  UndoLog log(GetParam());
  log.before_write(img, 0, 0);
  EXPECT_TRUE(log.empty());
}

INSTANTIATE_TEST_SUITE_P(Strategies, UndoLogTest,
                         ::testing::Values(UndoStrategy::kByteRange,
                                           UndoStrategy::kShadowPage),
                         [](const auto& info) {
                           return info.param == UndoStrategy::kByteRange
                                      ? "ByteRange"
                                      : "ShadowPage";
                         });

TEST(UndoLogStrategyTest, ByteRangeIsCompactForNarrowWrites) {
  ObjectImage img(ObjectId(1), 4, 4096);
  img.materialize_all();
  UndoLog byte_log(UndoStrategy::kByteRange);
  UndoLog shadow_log(UndoStrategy::kShadowPage);
  byte_log.before_write(img, 0, 16);
  shadow_log.before_write(img, 0, 16);
  EXPECT_EQ(byte_log.memory_bytes(), 16u);
  EXPECT_EQ(shadow_log.memory_bytes(), 4096u);
}

TEST(UndoLogStrategyTest, ShadowCapturesPageOnceDespiteManyWrites) {
  ObjectImage img(ObjectId(1), 1, 4096);
  img.materialize_all();
  UndoLog shadow(UndoStrategy::kShadowPage);
  for (int i = 0; i < 10; ++i) shadow.before_write(img, 0, 64);
  EXPECT_EQ(shadow.record_count(), 1u);
  EXPECT_EQ(shadow.memory_bytes(), 4096u);

  UndoLog bytes(UndoStrategy::kByteRange);
  for (int i = 0; i < 10; ++i) bytes.before_write(img, 0, 64);
  EXPECT_EQ(bytes.record_count(), 10u);
}

TEST(UndoLogStrategyTest, ShadowAbsorbDoesNotRecaptureChildPages) {
  // After absorbing a child's shadow of page 0, the parent must NOT
  // re-shadow it (that would capture the child's committed data and break
  // reverse-order restoration).
  ObjectImage img(ObjectId(1), 1, 16);
  img.materialize_all();
  img.write_bytes(0, bytes_of("base"));

  UndoLog parent(UndoStrategy::kShadowPage);
  UndoLog child(UndoStrategy::kShadowPage);
  child.before_write(img, 0, 4);
  img.write_bytes(0, bytes_of("chi1"));
  parent.absorb(std::move(child));

  parent.before_write(img, 0, 4);  // must be a no-op capture
  EXPECT_EQ(parent.record_count(), 1u);
  img.write_bytes(0, bytes_of("par1"));

  parent.undo([&](ObjectId) -> ObjectImage& { return img; });
  EXPECT_EQ(read_str(img, 0, 4), "base");
}

}  // namespace
}  // namespace lotec
