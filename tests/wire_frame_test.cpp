// Wire frame serialization: golden byte layouts, the 64-byte header pin,
// encode/decode round-trips for every frame type and message kind, a
// fuzz-style table of hostile/truncated buffers the decoder must reject,
// and the WorkerLedger StatsReply payload round-trip.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "wire/frame.hpp"
#include "wire/ledger.hpp"

namespace lotec::wire {
namespace {

[[nodiscard]] std::uint64_t read_le(std::span<const std::byte> buf,
                                    std::size_t offset, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
             buf[offset + i]))
         << (8 * i);
  return v;
}

TEST(WireFrameTest, HeaderIsExactlyTheModeledSixtyFourBytes) {
  // The analytic cost model has charged a fixed 64-byte header since the
  // seed; the wire realizes it.  If either constant moves, every accounted
  // byte across the two transports diverges.
  EXPECT_EQ(kFrameSize, 64u);
  EXPECT_EQ(kFrameSize, wire::kHeaderBytes);
  EXPECT_EQ(encode_frame(Frame{}).size(), 64u);
}

TEST(WireFrameTest, GoldenByteLayout) {
  Frame f;
  f.type = FrameType::kData;
  f.kind = MessageKind::kPageFetchReply;  // enum index 7
  f.flags = 0;
  f.src = 2;
  f.dst = 5;
  f.object = 0x0123456789ABCDEFull;
  f.payload_bytes = 4096;
  f.correlation = 42;
  f.trace = TraceContext{0x1111, 0x2222, 7};

  const std::array<std::byte, kFrameSize> buf = encode_frame(f);
  const std::uint8_t expected[kFrameSize] = {
      0x43, 0x54, 0x4F, 0x4C,                          // magic "LOTC" (LE)
      0x01,                                            // version
      0x01,                                            // type = kData
      0x07,                                            // kind = kPageFetchReply
      0x00,                                            // flags
      0x02, 0x00, 0x00, 0x00,                          // src = 2
      0x05, 0x00, 0x00, 0x00,                          // dst = 5
      0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01,  // object
      0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4096
      0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // correlation = 42
      0x11, 0x11, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // trace id
      0x22, 0x22, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // parent span
      0x07,                                            // trace phase
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,        // reserved
  };
  for (std::size_t i = 0; i < kFrameSize; ++i)
    EXPECT_EQ(std::to_integer<std::uint8_t>(buf[i]), expected[i])
        << "at offset " << i;
}

TEST(WireFrameTest, GoldenOffsetsForEveryMessageKind) {
  // The per-kind golden check: for every kind a Data frame built from an
  // accounted WireMessage places that kind (and only that kind) at offset 6,
  // with the message fields at their pinned offsets.
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kNumKinds);
       ++k) {
    const auto kind = static_cast<MessageKind>(k);
    const WireMessage m{kind, NodeId(1), NodeId(3), ObjectId(9), 17 + k};
    m.trace = TraceContext{100 + k, 200 + k,
                           static_cast<std::uint8_t>(k % 13)};
    const Frame f = data_frame(m, /*correlation=*/1000 + k);
    const std::array<std::byte, kFrameSize> buf = encode_frame(f);

    EXPECT_EQ(read_le(buf, 0, 4), kMagic) << "kind " << k;
    EXPECT_EQ(read_le(buf, 4, 1), kWireVersion);
    EXPECT_EQ(read_le(buf, 5, 1),
              static_cast<std::uint64_t>(FrameType::kData));
    EXPECT_EQ(read_le(buf, 6, 1), k);
    EXPECT_EQ(read_le(buf, 8, 4), 1u);
    EXPECT_EQ(read_le(buf, 12, 4), 3u);
    EXPECT_EQ(read_le(buf, 16, 8), 9u);
    EXPECT_EQ(read_le(buf, 24, 8), 17u + k);
    EXPECT_EQ(read_le(buf, 32, 8), 1000u + k);
    EXPECT_EQ(read_le(buf, 40, 8), 100u + k);
    EXPECT_EQ(read_le(buf, 48, 8), 200u + k);
    EXPECT_EQ(read_le(buf, 56, 1), k % 13);
    for (std::size_t i = 57; i < kFrameSize; ++i)
      EXPECT_EQ(std::to_integer<std::uint8_t>(buf[i]), 0u);

    const Frame back = decode_frame(buf);
    EXPECT_EQ(back, f) << "round-trip for kind " << k;
  }
}

TEST(WireFrameTest, RoundTripsEveryFrameType) {
  for (std::uint8_t t = 1; t <= 8; ++t) {
    Frame f;
    f.type = static_cast<FrameType>(t);
    f.flags = static_cast<std::uint8_t>(NackReason::kTimeout);
    f.src = kCoordinatorNode;
    f.dst = 0;
    f.correlation = 7;
    const Frame back = decode_frame(encode_frame(f));
    EXPECT_EQ(back, f) << "frame type " << int(t);
  }
}

TEST(WireFrameTest, RejectsEveryTruncation) {
  const std::array<std::byte, kFrameSize> buf = encode_frame(Frame{});
  for (std::size_t len = 0; len < kFrameSize; ++len)
    EXPECT_THROW((void)decode_frame(std::span(buf.data(), len)),
                 WireProtocolError)
        << "accepted a " << len << "-byte header";
}

TEST(WireFrameTest, HostileMutationTable) {
  // Fuzz-style table: one valid frame, one byte patched per row; every
  // mutation must be rejected, never folded into a plausible frame.
  struct Mutation {
    const char* label;
    std::size_t offset;
    std::uint8_t value;
  };
  const Mutation mutations[] = {
      {"bad magic byte 0", 0, 0x00},
      {"bad magic byte 3", 3, 0xFF},
      {"unknown version", 4, 99},
      {"frame type zero", 5, 0},
      {"frame type out of range", 5, 11},  // one past kStatsScrapeReply
      {"frame type hostile", 5, 0xFF},
      {"message kind out of range", 6,
       static_cast<std::uint8_t>(MessageKind::kNumKinds)},
      {"message kind hostile", 6, 0xEE},
      {"reserved byte 57 set", 57, 1},
      {"reserved byte 63 set", 63, 0x80},
  };
  Frame valid;
  valid.type = FrameType::kData;
  valid.kind = MessageKind::kLockAcquireRequest;
  for (const Mutation& m : mutations) {
    std::array<std::byte, kFrameSize> buf = encode_frame(valid);
    buf[m.offset] = std::byte{m.value};
    EXPECT_THROW((void)decode_frame(buf), WireProtocolError) << m.label;
  }
}

TEST(WireFrameTest, RejectsOversizedPayloadDeclaration) {
  Frame f;
  f.payload_bytes = kMaxPayloadBytes;  // boundary: still legal
  EXPECT_EQ(decode_frame(encode_frame(f)).payload_bytes, kMaxPayloadBytes);
  f.payload_bytes = kMaxPayloadBytes + 1;
  EXPECT_THROW((void)decode_frame(encode_frame(f)), WireProtocolError);
  f.payload_bytes = ~std::uint64_t{0};  // hostile length-field bomb
  EXPECT_THROW((void)decode_frame(encode_frame(f)), WireProtocolError);
}

TEST(WireLedgerTest, SerializeParseRoundTrip) {
  WorkerLedger l;
  for (std::size_t k = 0; k < kNumWireKinds; ++k) {
    l.delivered[k] = {k * 3 + 1, k * 100 + 7};
    l.relayed[k] = {k * 2, k * 50};
  }
  l.duplicates_dropped = 5;
  l.locks_granted = 11;
  l.locks_released = 10;
  l.gdo_requests_served = 42;
  l.replica_syncs_applied = 3;
  l.page_bytes_stored = 123456;

  const std::vector<std::byte> payload = serialize_ledger(l);
  EXPECT_EQ(read_le(payload, 0, 8), kNumWireKinds);
  EXPECT_EQ(parse_ledger(payload), l);
}

TEST(WireLedgerTest, RejectsTruncatedAndInconsistentPayloads) {
  const std::vector<std::byte> payload = serialize_ledger(WorkerLedger{});
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, std::size_t{8},
        payload.size() - 1}) {
    EXPECT_THROW((void)parse_ledger(std::span(payload.data(), len)),
                 WireProtocolError)
        << "accepted a " << len << "-byte ledger";
  }
  // Kind-count mismatch: a worker built against a different MessageKind
  // enum must be rejected, not misinterpreted.
  std::vector<std::byte> skewed = payload;
  skewed[0] = std::byte{static_cast<std::uint8_t>(kNumWireKinds + 1)};
  EXPECT_THROW((void)parse_ledger(skewed), WireProtocolError);
  // Trailing garbage after a well-formed ledger is equally hostile.
  std::vector<std::byte> trailing = payload;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)parse_ledger(trailing), WireProtocolError);
}

TEST(WireLedgerTest, AccumulationMatchesPerKindSums) {
  WorkerLedger a, b;
  a.delivered[0] = {1, 100};
  a.locks_granted = 2;
  b.delivered[0] = {3, 50};
  b.relayed[1] = {7, 700};
  b.page_bytes_stored = 9;
  WorkerLedger sum = a;
  sum += b;
  EXPECT_EQ(sum.delivered[0].messages, 4u);
  EXPECT_EQ(sum.delivered[0].bytes, 150u);
  EXPECT_EQ(sum.relayed[1].messages, 7u);
  EXPECT_EQ(sum.locks_granted, 2u);
  EXPECT_EQ(sum.page_bytes_stored, 9u);
  EXPECT_EQ(sum.delivered_total().messages, 4u);
  EXPECT_EQ(sum.relayed_total().bytes, 700u);
}

}  // namespace
}  // namespace lotec::wire
