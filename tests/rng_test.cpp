// Rng / ZipfSampler: determinism, bounds, and distribution sanity.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace lotec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
  EXPECT_THROW(rng.below(0), UsageError);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.between(5, 4), UsageError);
  EXPECT_EQ(rng.between(9, 9), 9u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // Child and parent must not produce the same stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 4);
}

TEST(ZipfSamplerTest, UniformWhenThetaZero) {
  ZipfSampler sampler(4, 0.0);
  Rng rng(3);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 8000; ++i) counts[sampler.draw(rng)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 4u);
    EXPECT_NEAR(c, 2000, 200);
  }
}

TEST(ZipfSamplerTest, SkewConcentratesOnLowIndices) {
  ZipfSampler sampler(10, 1.2);
  Rng rng(3);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[sampler.draw(rng)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], 2500);  // item 0 dominates
}

TEST(ZipfSamplerTest, RejectsBadArgs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), UsageError);
  EXPECT_THROW(ZipfSampler(4, -0.5), UsageError);
}

TEST(ZipfSamplerTest, SingleItemAlwaysZero) {
  ZipfSampler sampler(1, 2.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.draw(rng), 0u);
}

}  // namespace
}  // namespace lotec
