// Snapshot persistence: round trips, schema verification, corruption
// detection, and post-restore operability.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "persist/snapshot.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "lotec_snap_" + tag + ".bin";
}

ClusterConfig snap_config() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.page_size = 256;
  cfg.seed = 41;
  return cfg;
}

void define_schema(Cluster& cluster, int objects) {
  const ClassId cls = cluster.define_class(
      ClassBuilder("SnapCell", cluster.config().page_size)
          .attribute("v", 8)
          .attribute("tag", 64)
          .attribute("blob", 512)  // multi-page object
          .method("bump", {"v"}, {"v"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
                  })
          .method("label", {"v"}, {"tag"}, [](MethodContext& ctx) {
            ctx.set_string("tag",
                           "v=" + std::to_string(ctx.get<std::int64_t>("v")));
          }));
  for (int i = 0; i < objects; ++i) (void)cluster.create_object(cls);
}

TEST(SnapshotTest, RoundTripRestoresEveryAttribute) {
  const std::string path = temp_path("roundtrip");
  constexpr int kObjects = 6;

  std::vector<std::int64_t> values;
  std::vector<std::string> tags;
  {
    Cluster cluster(snap_config());
    define_schema(cluster, kObjects);
    for (int i = 0; i < kObjects; ++i) {
      for (int b = 0; b <= i; ++b)
        ASSERT_TRUE(cluster.run_root(ObjectId(i), "bump",
                                     NodeId(b % 4)).committed);
      ASSERT_TRUE(cluster.run_root(ObjectId(i), "label").committed);
      values.push_back(cluster.peek<std::int64_t>(ObjectId(i), "v"));
      tags.push_back(cluster.peek_string(ObjectId(i), "tag"));
    }
    const SnapshotStats stats = save_snapshot(cluster, path);
    EXPECT_EQ(stats.objects, static_cast<std::size_t>(kObjects));
    EXPECT_GT(stats.pages, static_cast<std::size_t>(kObjects));
  }

  Cluster restored(snap_config());
  define_schema(restored, kObjects);
  const SnapshotStats stats = load_snapshot(restored, path);
  EXPECT_EQ(stats.objects, static_cast<std::size_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    EXPECT_EQ(restored.peek<std::int64_t>(ObjectId(i), "v"), values[i]);
    EXPECT_EQ(restored.peek_string(ObjectId(i), "tag"), tags[i]);
  }
  EXPECT_TRUE(validate_quiescent(restored).empty());

  // The restored cluster is fully operational: keep transacting.
  ASSERT_TRUE(restored.run_root(ObjectId(0), "bump", NodeId(3)).committed);
  EXPECT_EQ(restored.peek<std::int64_t>(ObjectId(0), "v"), values[0] + 1);
  std::remove(path.c_str());
}

TEST(SnapshotTest, WorkloadStateSurvivesTheRoundTrip) {
  const std::string path = temp_path("workload");
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 1;
  spec.max_pages = 4;
  spec.num_transactions = 50;
  spec.seed = 42;
  const Workload workload(spec);

  std::vector<std::int64_t> expected;
  {
    Cluster cluster(snap_config());
    auto requests = workload.instantiate(cluster);
    for (const auto& r : cluster.execute(std::move(requests)))
      ASSERT_TRUE(r.committed);
    for (std::size_t i = 0; i < workload.num_objects(); ++i)
      expected.push_back(cluster.peek<std::int64_t>(ObjectId(i), "a0"));
    (void)save_snapshot(cluster, path);
  }

  Cluster restored(snap_config());
  (void)workload.instantiate(restored);  // same schema + objects, no txns
  (void)load_snapshot(restored, path);
  for (std::size_t i = 0; i < workload.num_objects(); ++i)
    EXPECT_EQ(restored.peek<std::int64_t>(ObjectId(i), "a0"), expected[i]);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsCorruption) {
  const std::string path = temp_path("corrupt");
  {
    Cluster cluster(snap_config());
    define_schema(cluster, 2);
    ASSERT_TRUE(cluster.run_root(ObjectId(0), "bump").committed);
    (void)save_snapshot(cluster, path);
  }
  // Flip one byte in the middle.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(120);
    char b = 0;
    f.seekg(120);
    f.get(b);
    b = static_cast<char>(b ^ 0x5A);
    f.seekp(120);
    f.put(b);
  }
  Cluster restored(snap_config());
  define_schema(restored, 2);
  EXPECT_THROW((void)load_snapshot(restored, path), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsTruncation) {
  const std::string path = temp_path("trunc");
  {
    Cluster cluster(snap_config());
    define_schema(cluster, 2);
    (void)save_snapshot(cluster, path);
  }
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    all.resize(all.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size()));
  }
  Cluster restored(snap_config());
  define_schema(restored, 2);
  EXPECT_THROW((void)load_snapshot(restored, path), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsSchemaMismatch) {
  const std::string path = temp_path("schema");
  {
    Cluster cluster(snap_config());
    define_schema(cluster, 2);
    (void)save_snapshot(cluster, path);
  }
  Cluster other(snap_config());
  const ClassId different = other.define_class(
      ClassBuilder("SomethingElse", 256)
          .attribute("v", 8)
          .attribute("tag", 64)
          .attribute("blob", 512)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", 1);
          }));
  (void)other.create_object(different);
  (void)other.create_object(different);
  EXPECT_THROW((void)load_snapshot(other, path), SnapshotError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsRestoreIntoUsedCluster) {
  const std::string path = temp_path("used");
  {
    Cluster cluster(snap_config());
    define_schema(cluster, 2);
    (void)save_snapshot(cluster, path);
  }
  Cluster used(snap_config());
  define_schema(used, 2);
  // Touch an object from another node first: ownership moves.
  ASSERT_TRUE(used.run_root(ObjectId(0), "bump", NodeId(3)).committed);
  EXPECT_THROW((void)load_snapshot(used, path), UsageError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsGarbageFiles) {
  const std::string path = temp_path("garbage");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a snapshot";
  }
  Cluster cluster(snap_config());
  define_schema(cluster, 1);
  EXPECT_THROW((void)load_snapshot(cluster, path), SnapshotError);
  EXPECT_THROW((void)load_snapshot(cluster, "/nonexistent/nowhere.bin"),
               SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lotec
