// The tracing hook on the Transport send path must not allocate: a span-
// traced run records one MessageRecord per message, and a heap allocation
// per record would put malloc on the hottest path in the system.  The kind
// string rides as a std::string_view over to_string's static table and the
// record buffer is pre-sized, so the steady state is allocation-free —
// asserted here with a counting global operator new.
//
// The counter is compiled into this binary's global operator new, which is
// shared by every test in the suite; it only *counts* between arm()/disarm()
// so the other tests see stock behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void count_alloc() noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lotec {
namespace {

TEST(NoteMessageAllocTest, SteadyStateNoteMessageDoesNotAllocate) {
  SpanTracer tracer;
  tracer.enable();
  constexpr std::size_t kMessages = 4096;
  tracer.reserve_messages(kMessages);
  const TraceContext ctx{};

  // Warm-up record (first call may lazily touch thread-local state).
  tracer.note_message(to_string(MessageKind::kLockAcquireRequest), 0, 1,
                      /*object=*/7, /*bytes=*/64, ctx);

  g_allocations.store(0);
  g_counting.store(true);
  for (std::size_t i = 1; i < kMessages; ++i) {
    tracer.tick_message();
    tracer.note_message(to_string(MessageKind::kLockReleaseRequest), 0, 1,
                        /*object=*/i % 13, /*bytes=*/128, ctx);
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "note_message allocated on the steady-state path";
}

TEST(TimeseriesAllocTest, SteadyStateScrapeDoesNotAllocate) {
  // The telemetry collector shares the transport hot path with
  // note_message, so it obeys the same contract: once the handle tables
  // match the registry generation, on_message — including the window
  // closes it triggers — performs zero heap allocations.  (Registering a
  // NEW metric bumps the generation and re-allocates the tables; that is
  // the one sanctioned slow path, exercised un-armed here.)
  MetricsRegistry registry;
  MetricsCounter& commits = registry.counter("txn.commits");
  MetricsCounter& sends = registry.counter("net.logical_sends");
  LatencyHistogram& attempt = registry.histogram("span.family.attempt");
  TimeseriesConfig cfg;
  cfg.tick_interval = 8;  // close a window every 8 messages while armed
  cfg.retain = 16;
  TimeseriesCollector ts(registry, cfg);

  // Warm-up: cross one window boundary so the handle tables and the ring
  // slots are sized for the current registry generation.
  for (int i = 0; i < 10; ++i) ts.on_message();

  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 256; ++i) {
    commits.add(1);
    sends.add(2);
    attempt.record(static_cast<std::uint64_t>(i) % 77);
    ts.on_message();
  }
  g_counting.store(false);
  EXPECT_GT(ts.windows_closed(), 30u) << "interval never fired";
  EXPECT_EQ(g_allocations.load(), 0u)
      << "the timeseries scrape allocated on the steady-state path";
}

}  // namespace
}  // namespace lotec
