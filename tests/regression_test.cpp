// Regressions caught by the randomized soak harness, pinned as
// deterministic tests.
#include <gtest/gtest.h>

#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

// soak iteration 193 (base seed 1234): RC protocol + a 4-page cache budget
// + read-shared locks.  A read holder's release used to report residency,
// flapping page-map ownership under a concurrent read holder; the old
// owner's copy then became evictable and the surviving holder's late fetch
// (against its now-stale grant map) hit an evicted page.  Residency reports
// are now restricted to write holders.
TEST(SoakRegressionTest, ReadShareOwnershipFlapWithTinyCache) {
  WorkloadSpec spec;
  spec.num_objects = 23;
  spec.min_pages = 2;
  spec.max_pages = 6;
  spec.num_transactions = 82;
  spec.contention_theta = 1.04;
  spec.touched_attr_fraction = 0.4971;
  spec.write_fraction = 0.6;
  spec.read_method_fraction = 0.3;
  spec.max_depth = 3;
  spec.child_probability = 0.4;
  spec.prediction_coverage = 0.85;
  spec.seed = 16419632643958990576ULL;

  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.page_size = 512;
  cfg.protocol = ProtocolKind::kRc;
  cfg.seed = 5335475164956675514ULL;
  cfg.cache_capacity_pages = 4;
  Cluster cluster(cfg);
  const Workload workload(spec);
  EXPECT_NO_THROW({
    const auto results = cluster.execute(workload.instantiate(cluster));
    for (const auto& r : results) EXPECT_TRUE(r.committed);
  });
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

// The same mechanism distilled: two families read-share an object while a
// third node owns its pages; the first reader's release must NOT move
// ownership; after cache pressure evicts redundant copies, the second
// reader's (LOTEC) demand fetch must still find the pages.
TEST(SoakRegressionTest, ReadReleaseDoesNotMoveOwnership) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kOtec;
  cfg.seed = 17;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("write", {"v"}, {"v"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
                  })
          .method("read", {"v"}, {}, [](MethodContext& ctx) {
            (void)ctx.get<std::int64_t>("v");
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "write", NodeId(0)).committed);
  const NodeId owner_before =
      cluster.gdo().snapshot(obj).page_map.at(PageIndex(0)).node;
  // Read from another node and release.
  ASSERT_TRUE(cluster.run_root(obj, "read", NodeId(1)).committed);
  const NodeId owner_after =
      cluster.gdo().snapshot(obj).page_map.at(PageIndex(0)).node;
  EXPECT_EQ(owner_before, owner_after)
      << "a read-only release moved page ownership";
  // A write release still reports residency (single-source discipline).
  ASSERT_TRUE(cluster.run_root(obj, "write", NodeId(2)).committed);
  EXPECT_EQ(cluster.gdo().snapshot(obj).page_map.at(PageIndex(0)).node,
            NodeId(2));
}

// soak seed 999 iteration 55: RC under the CONCURRENT scheduler used to
// send its eager pushes AFTER releasing the lock; a slow push could then
// overwrite a caching site's freshly committed (newer) pages with the
// pusher's older ones, leaving the directory pointing at a version the
// owner no longer held.  Pushes now happen before release, and installs are
// version-guarded.  (Concurrent-mode schedule: the run is nondeterministic,
// but the invariants must hold on every outcome.)
TEST(SoakRegressionTest, RcPushesCannotClobberSuccessorCommits) {
  WorkloadSpec spec;
  spec.num_objects = 21;
  spec.min_pages = 2;
  spec.max_pages = 3;
  spec.num_transactions = 132;
  spec.contention_theta = 0.12;
  spec.seed = 7690008944073303017ULL;

  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.page_size = 512;
  cfg.protocol = ProtocolKind::kRc;
  cfg.scheduler = SchedulerMode::kConcurrent;
  cfg.seed = 4420676621890058471ULL;
  cfg.cache_capacity_pages = 19;
  Cluster cluster(cfg);
  const Workload workload(spec);
  const auto results = cluster.execute(workload.instantiate(cluster));
  for (const auto& r : results) EXPECT_TRUE(r.committed);
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace lotec
