// validate_quiescent: the system-wide invariants hold after every kind of
// run — commits, aborts, deadlock storms, cache pressure, every protocol.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

void expect_clean(Cluster& cluster) {
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

class ValidateTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ValidateTest, AfterPlainWorkload) {
  WorkloadSpec spec;
  spec.num_objects = 10;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 80;
  spec.contention_theta = 0.7;
  spec.seed = 55;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

TEST_P(ValidateTest, AfterInjectedAborts) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 1;
  spec.max_pages = 4;
  spec.num_transactions = 60;
  spec.abort_probability = 0.3;
  spec.seed = 56;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

TEST_P(ValidateTest, AfterCachePressure) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 50;
  spec.contention_theta = 0.6;
  spec.seed = 57;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  cfg.cache_capacity_pages = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ValidateTest,
                         ::testing::Values(ProtocolKind::kCotec,
                                           ProtocolKind::kOtec,
                                           ProtocolKind::kLotec,
                                           ProtocolKind::kRc,
                                           ProtocolKind::kLotecDsd),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           std::erase(name, '-');
                           return name;
                         });

TEST(ValidateTest2, AfterDeadlockStorm) {
  // Non-hierarchical targets + high contention: plenty of deadlock
  // victims; everything must still be released and honest afterwards.
  WorkloadSpec spec;
  spec.num_objects = 6;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.num_transactions = 60;
  spec.contention_theta = 0.9;
  spec.hierarchical_targets = false;
  spec.seed = 58;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 6;
  Cluster cluster(cfg);
  const auto results = cluster.execute(workload.instantiate(cluster));
  std::uint64_t retries = 0;
  for (const auto& r : results)
    retries += static_cast<std::uint64_t>(r.deadlock_retries);
  EXPECT_GT(retries, 0u) << "storm did not storm";
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(ValidateTest2, DetectsArtificialViolations) {
  // Sanity: the validator is not a rubber stamp — corrupt state by hand
  // and it must complain.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  EXPECT_TRUE(validate_quiescent(cluster).empty());

  // Violation A: lingering dirty bit.
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    std::vector<std::byte> b{std::byte{9}};
    n1.store.get(obj).write_bytes(0, b);
  }
  EXPECT_FALSE(validate_quiescent(cluster).empty());
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    n1.store.get(obj).clear_dirty();
  }
  EXPECT_TRUE(validate_quiescent(cluster).empty());

  // Violation B: owner no longer resident.
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    n1.store.get(obj).evict_page(PageIndex(0));
  }
  EXPECT_FALSE(validate_quiescent(cluster).empty());
}

// --- elastic-directory knob validation (PROTOCOL.md §15) --------------------
// The ring composes with most of the stack but not all of it; every illegal
// combination must die at validate() with a message that names the fix, not
// surface as a mid-run surprise.

std::string rejection_of(const ClusterConfig& cfg) {
  try {
    cfg.validate();
  } catch (const UsageError& e) {
    return e.what();
  }
  ADD_FAILURE() << "config unexpectedly validated";
  return {};
}

ClusterConfig ring_cfg() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.gdo.replicate = true;
  cfg.gdo.ring.enabled = true;
  return cfg;
}

TEST(RingValidationTest, AcceptsAWellFormedRingConfig) {
  EXPECT_NO_THROW(ring_cfg().validate());
}

TEST(RingValidationTest, RejectsIncompatibleKnobs) {
  ClusterConfig cfg = ring_cfg();
  cfg.wire.enabled = true;
  EXPECT_NE(rejection_of(cfg).find("--distributed"), std::string::npos);

  cfg = ring_cfg();
  cfg.mv_read = true;
  EXPECT_NE(rejection_of(cfg).find("mv_read"), std::string::npos);

  cfg = ring_cfg();
  cfg.lock_cache = true;
  EXPECT_NE(rejection_of(cfg).find("lock_cache"), std::string::npos);

  cfg = ring_cfg();
  cfg.scheduler = SchedulerMode::kConcurrent;
  EXPECT_NE(rejection_of(cfg).find("deterministic"), std::string::npos);

  cfg = ring_cfg();
  cfg.gdo.replicate = false;
  EXPECT_NE(rejection_of(cfg).find("gdo.replicate"), std::string::npos);
}

TEST(RingValidationTest, RejectsDegenerateRingShapes) {
  ClusterConfig cfg = ring_cfg();
  cfg.gdo.ring.mirror_group = 0;
  EXPECT_NE(rejection_of(cfg).find("mirror_group"), std::string::npos);

  cfg = ring_cfg();
  cfg.gdo.ring.mirror_group = 4;  // == nodes: the group cannot fit
  EXPECT_NE(rejection_of(cfg).find("mirror_group"), std::string::npos);

  cfg = ring_cfg();
  cfg.gdo.ring.virtual_nodes = 0;
  EXPECT_NE(rejection_of(cfg).find("virtual_nodes"), std::string::npos);

  cfg = ring_cfg();
  cfg.nodes = 1;
  cfg.gdo.ring.mirror_group = 1;
  EXPECT_NE(rejection_of(cfg).find("2 nodes"), std::string::npos);
}

TEST(RingValidationTest, RejectsRingFaultEventsWithoutTheRing) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.fault = fault_presets::rebalance({NodeId(1)}, 1);
  EXPECT_NE(rejection_of(cfg).find("--rebalance"), std::string::npos);

  // And with the ring on, the membership events must name a real node.
  cfg = ring_cfg();
  cfg.fault = fault_presets::rebalance({NodeId(9)}, 1);
  EXPECT_NE(rejection_of(cfg).find("ring member"), std::string::npos);
}

TEST(RingValidationTest, ExperimentOptionsRunTheSameChecks) {
  // The sim-side options funnel through to_cluster_config().validate(), so
  // a tool passing --rebalance plus an incompatible flag dies identically.
  ExperimentOptions opt;
  opt.nodes = 4;
  opt.ring.enabled = true;  // options path force-enables gdo.replicate
  EXPECT_NO_THROW(opt.validate());

  opt.mv_read = true;
  EXPECT_THROW(opt.validate(), UsageError);
  opt.mv_read = false;

  opt.wire.enabled = true;
  EXPECT_THROW(opt.validate(), UsageError);
  opt.wire.enabled = false;

  opt.lock_cache = true;
  EXPECT_THROW(opt.validate(), UsageError);
}

}  // namespace
}  // namespace lotec
