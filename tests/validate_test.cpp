// validate_quiescent: the system-wide invariants hold after every kind of
// run — commits, aborts, deadlock storms, cache pressure, every protocol.
#include <gtest/gtest.h>

#include "sim/validate.hpp"
#include "workload/generator.hpp"

namespace lotec {
namespace {

void expect_clean(Cluster& cluster) {
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

class ValidateTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ValidateTest, AfterPlainWorkload) {
  WorkloadSpec spec;
  spec.num_objects = 10;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 80;
  spec.contention_theta = 0.7;
  spec.seed = 55;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

TEST_P(ValidateTest, AfterInjectedAborts) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 1;
  spec.max_pages = 4;
  spec.num_transactions = 60;
  spec.abort_probability = 0.3;
  spec.seed = 56;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

TEST_P(ValidateTest, AfterCachePressure) {
  WorkloadSpec spec;
  spec.num_objects = 8;
  spec.min_pages = 2;
  spec.max_pages = 5;
  spec.num_transactions = 50;
  spec.contention_theta = 0.6;
  spec.seed = 57;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = GetParam();
  cfg.seed = 6;
  cfg.cache_capacity_pages = 6;
  Cluster cluster(cfg);
  (void)cluster.execute(workload.instantiate(cluster));
  expect_clean(cluster);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ValidateTest,
                         ::testing::Values(ProtocolKind::kCotec,
                                           ProtocolKind::kOtec,
                                           ProtocolKind::kLotec,
                                           ProtocolKind::kRc,
                                           ProtocolKind::kLotecDsd),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           std::erase(name, '-');
                           return name;
                         });

TEST(ValidateTest2, AfterDeadlockStorm) {
  // Non-hierarchical targets + high contention: plenty of deadlock
  // victims; everything must still be released and honest afterwards.
  WorkloadSpec spec;
  spec.num_objects = 6;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.num_transactions = 60;
  spec.contention_theta = 0.9;
  spec.hierarchical_targets = false;
  spec.seed = 58;
  const Workload workload(spec);

  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.page_size = 256;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 6;
  Cluster cluster(cfg);
  const auto results = cluster.execute(workload.instantiate(cluster));
  std::uint64_t retries = 0;
  for (const auto& r : results)
    retries += static_cast<std::uint64_t>(r.deadlock_retries);
  EXPECT_GT(retries, 0u) << "storm did not storm";
  const auto violations = validate_quiescent(cluster);
  for (const auto& v : violations) ADD_FAILURE() << v;
}

TEST(ValidateTest2, DetectsArtificialViolations) {
  // Sanity: the validator is not a rubber stamp — corrupt state by hand
  // and it must complain.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.page_size = 64;
  Cluster cluster(cfg);
  const ClassId cls = cluster.define_class(
      ClassBuilder("C", cfg.page_size)
          .attribute("v", 8)
          .method("bump", {"v"}, {"v"}, [](MethodContext& ctx) {
            ctx.set<std::int64_t>("v", ctx.get<std::int64_t>("v") + 1);
          }));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  ASSERT_TRUE(cluster.run_root(obj, "bump", NodeId(1)).committed);
  EXPECT_TRUE(validate_quiescent(cluster).empty());

  // Violation A: lingering dirty bit.
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    std::vector<std::byte> b{std::byte{9}};
    n1.store.get(obj).write_bytes(0, b);
  }
  EXPECT_FALSE(validate_quiescent(cluster).empty());
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    n1.store.get(obj).clear_dirty();
  }
  EXPECT_TRUE(validate_quiescent(cluster).empty());

  // Violation B: owner no longer resident.
  {
    Node& n1 = cluster.node(NodeId(1));
    std::lock_guard<std::mutex> lock(n1.store_mu);
    n1.store.get(obj).evict_page(PageIndex(0));
  }
  EXPECT_FALSE(validate_quiescent(cluster).empty());
}

}  // namespace
}  // namespace lotec
