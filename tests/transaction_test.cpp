// Transaction / Family: tree structure, closed-nesting state rules, undo
// inheritance, ancestor queries.
#include <gtest/gtest.h>

#include "txn/family.hpp"

namespace lotec {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  Family family_{FamilyId(1), NodeId(0), UndoStrategy::kByteRange};
};

TEST_F(TransactionTest, RootAndChildrenGetSerials) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.id().serial, 0u);
  EXPECT_EQ(root.depth(), 0u);

  Transaction& c1 = family_.begin_child(root, ObjectId(2), MethodId(1));
  Transaction& c2 = family_.begin_child(c1, ObjectId(3), MethodId(0));
  EXPECT_EQ(c1.id().serial, 1u);
  EXPECT_EQ(c2.id().serial, 2u);
  EXPECT_EQ(c2.depth(), 2u);
  EXPECT_EQ(c2.parent(), &c1);
  EXPECT_EQ(family_.num_txns(), 3u);
}

TEST_F(TransactionTest, AncestorQueries) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  Transaction& c1 = family_.begin_child(root, ObjectId(2), MethodId(0));
  Transaction& c2 = family_.begin_child(c1, ObjectId(3), MethodId(0));
  Transaction& sibling = family_.begin_child(root, ObjectId(4), MethodId(0));

  EXPECT_TRUE(c2.is_self_or_ancestor(0));  // root
  EXPECT_TRUE(c2.is_self_or_ancestor(1));  // c1
  EXPECT_TRUE(c2.is_self_or_ancestor(2));  // self
  EXPECT_FALSE(c2.is_self_or_ancestor(3)); // sibling branch
  EXPECT_FALSE(root.is_self_or_ancestor(1));
  (void)sibling;
}

TEST_F(TransactionTest, PreCommitRequiresFinishedChildren) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  Transaction& c1 = family_.begin_child(root, ObjectId(2), MethodId(0));
  Transaction& c2 = family_.begin_child(c1, ObjectId(3), MethodId(0));
  EXPECT_THROW(c1.pre_commit(), UsageError);  // c2 still active (rule 3)
  c2.pre_commit();
  EXPECT_EQ(c2.state(), TxnState::kPreCommitted);
  EXPECT_NO_THROW(c1.pre_commit());
}

TEST_F(TransactionTest, RootsCommitNotPreCommit) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  EXPECT_THROW(root.pre_commit(), UsageError);
  root.commit_root();
  EXPECT_EQ(root.state(), TxnState::kCommitted);
}

TEST_F(TransactionTest, CommitRootRejectsActiveChildren) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  (void)family_.begin_child(root, ObjectId(2), MethodId(0));
  EXPECT_THROW(root.commit_root(), UsageError);
}

TEST_F(TransactionTest, FinishedTransactionsRejectFurtherUse) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  Transaction& c1 = family_.begin_child(root, ObjectId(2), MethodId(0));
  c1.pre_commit();
  EXPECT_THROW(c1.pre_commit(), UsageError);
  EXPECT_THROW(family_.begin_child(c1, ObjectId(3), MethodId(0)), UsageError);
  EXPECT_THROW(c1.abort([](ObjectId) -> ObjectImage& {
    throw UsageError("unused");
  }),
               UsageError);
}

TEST_F(TransactionTest, PreCommitHandsUndoToParent) {
  ObjectImage img(ObjectId(2), 1, 16);
  img.materialize_all();
  const auto resolve = [&](ObjectId) -> ObjectImage& { return img; };

  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  Transaction& child = family_.begin_child(root, ObjectId(2), MethodId(0));

  std::vector<std::byte> data{std::byte{0xAB}};
  child.undo().before_write(img, 0, 1);
  img.write_bytes(0, data);
  child.pre_commit();
  EXPECT_TRUE(child.undo().empty());
  EXPECT_FALSE(root.undo().empty());

  // Root abort rolls the child's committed write back.
  root.abort(resolve);
  std::vector<std::byte> buf(1);
  img.read_bytes(0, buf);
  EXPECT_EQ(buf[0], std::byte{0});
}

TEST_F(TransactionTest, FamilyResetForRetry) {
  Transaction& root = family_.begin_root(ObjectId(1), MethodId(0));
  (void)family_.begin_child(root, ObjectId(2), MethodId(0));
  EXPECT_THROW(family_.begin_root(ObjectId(1), MethodId(0)), UsageError);
  family_.reset();
  EXPECT_EQ(family_.root(), nullptr);
  EXPECT_EQ(family_.num_txns(), 0u);
  Transaction& again = family_.begin_root(ObjectId(1), MethodId(0));
  EXPECT_EQ(again.id().serial, 0u);  // serials restart (script alignment)
}

}  // namespace
}  // namespace lotec
