// common/: strong ids, TxnId, Summary statistics, percentile, logging.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"

namespace lotec {
namespace {

TEST(IdsTest, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(NodeId(3).value(), 3u);
  EXPECT_TRUE(NodeId(0).valid());
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ClassId>);
  static_assert(!std::is_convertible_v<NodeId, ObjectId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);  // explicit
}

TEST(IdsTest, OrderingAndHash) {
  EXPECT_LT(ObjectId(1), ObjectId(2));
  EXPECT_EQ(ObjectId(5), ObjectId(5));
  std::hash<ObjectId> h;
  EXPECT_EQ(h(ObjectId(9)), h(ObjectId(9)));
}

TEST(IdsTest, StreamFormatting) {
  std::ostringstream oss;
  oss << NodeId(4) << " " << NodeId{};
  EXPECT_EQ(oss.str(), "4 <invalid>");
}

TEST(TxnIdTest, RootAndOrdering) {
  const TxnId root{FamilyId(7), 0};
  const TxnId child{FamilyId(7), 3};
  EXPECT_TRUE(root.is_root());
  EXPECT_FALSE(child.is_root());
  EXPECT_LT(root, child);
  EXPECT_LT(child, (TxnId{FamilyId(8), 0}));
  EXPECT_EQ(to_string(child), "T7.3");
  std::hash<TxnId> h;
  EXPECT_EQ(h(child), h(TxnId{FamilyId(7), 3}));
  EXPECT_NE(h(child), h(root));
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (const double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.total(), 12.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // sample variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 25), 2.0);  // sorts internally
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 50), 1.5);           // interpolation
}

TEST(LoggingTest, LevelGatesOutput) {
  Logger& log = Logger::instance();
  const LogLevel before = log.level();
  log.set_level(LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kWarn));
  log.set_level(LogLevel::kInfo);
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  log.set_level(before);
}

TEST(ErrorTest, AbortReasonNames) {
  EXPECT_STREQ(to_string(AbortReason::kUser), "user");
  EXPECT_STREQ(to_string(AbortReason::kDeadlock), "deadlock");
  EXPECT_STREQ(to_string(AbortReason::kInjected), "injected");
  EXPECT_STREQ(to_string(AbortReason::kRetryExhausted), "retry-exhausted");
}

TEST(ErrorTest, RecursiveInvocationCarriesContext) {
  const RecursiveInvocationError e(ObjectId(3), TxnId{FamilyId(1), 2},
                                   TxnId{FamilyId(1), 0});
  EXPECT_EQ(e.object(), ObjectId(3));
  EXPECT_EQ(e.requester().serial, 2u);
  EXPECT_EQ(e.holder().serial, 0u);
  EXPECT_NE(std::string(e.what()).find("T1.2"), std::string::npos);
}

}  // namespace
}  // namespace lotec
