// Wire-plane telemetry scrape (PROTOCOL.md §16): an admin connection —
// identified by the kAdminNode sentinel in its Hello — may poll a live
// lotec_worker with kStatsScrapeRequest and gets the worker's ledger and
// counters back as Prometheus text.  The channel is strictly out-of-band:
// the contract asserted here is that scraping adds exactly ZERO accounted
// messages and bytes (coordinator ledger AND worker delivered/relayed
// ledgers), that an admin cannot inject data frames, and that an admin
// disconnect never tears the worker down.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"
#include "wire/frame.hpp"
#include "wire/socket.hpp"
#include "wire/wire_transport.hpp"

namespace lotec {
namespace {

using wire::Fd;
using wire::Frame;
using wire::FrameType;
using wire::kAdminNode;
using wire::kFrameSize;

/// A scratch socket directory the test controls, so it knows where the
/// workers listen (the launcher's default is a private temp dir).
std::string make_socket_dir() {
  std::string templ = "/tmp/lotec_scrape_test_XXXXXX";
  if (::mkdtemp(templ.data()) == nullptr) ADD_FAILURE() << "mkdtemp failed";
  return templ;
}

ClusterConfig wire_config(std::size_t nodes, const std::string& socket_dir) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.wire.enabled = true;
  cfg.wire.socket_dir = socket_dir;
#ifdef LOTEC_WORKER_BIN
  cfg.wire.worker_path = LOTEC_WORKER_BIN;
#endif
  return cfg;
}

/// Minimal admin client: the same handshake lotec_top performs.
class AdminConn {
 public:
  AdminConn(const std::string& socket_dir, std::uint32_t node)
      : fd_(wire::uds_connect(socket_dir + "/node" + std::to_string(node) +
                                  ".sock",
                              wire::Millis(3000))),
        node_(node) {
    Frame hello;
    hello.type = FrameType::kHello;
    hello.src = kAdminNode;
    hello.dst = node;
    hello.correlation = ++corr_;
    wire::write_full(fd_, wire::encode_frame(hello));
    EXPECT_EQ(read_frame().first.type, FrameType::kHelloAck);
  }

  std::string scrape() {
    Frame req;
    req.type = FrameType::kStatsScrapeRequest;
    req.src = kAdminNode;
    req.dst = node_;
    req.correlation = ++corr_;
    wire::write_full(fd_, wire::encode_frame(req));
    const auto [reply, payload] = read_frame();
    EXPECT_EQ(reply.type, FrameType::kStatsScrapeReply);
    return payload;
  }

  /// Hostile: an admin trying to inject an accounted data frame.
  void inject_data_frame() {
    Frame f;
    f.type = FrameType::kData;
    f.kind = MessageKind::kLockAcquireRequest;
    f.src = kAdminNode;
    f.dst = node_;
    f.correlation = ++corr_;
    wire::write_full(fd_, wire::encode_frame(f));
  }

 private:
  std::pair<Frame, std::string> read_frame() {
    const auto deadline = wire::deadline_after(wire::Millis(5000));
    std::array<std::byte, kFrameSize> header;
    wire::read_full(fd_, header, deadline);
    const Frame f = wire::decode_frame(header);
    std::string payload(static_cast<std::size_t>(f.payload_bytes), '\0');
    if (f.payload_bytes > 0)
      wire::read_full(fd_,
                      std::span<std::byte>(
                          reinterpret_cast<std::byte*>(payload.data()),
                          payload.size()),
                      deadline);
    return {f, payload};
  }

  Fd fd_;
  std::uint32_t node_;
  std::uint64_t corr_ = 0;
};

ObjectId setup_counter(Cluster& cluster, const ClusterConfig& cfg) {
  const ClassId cls = cluster.define_class(
      ClassBuilder("Counter", cfg.page_size)
          .attribute("value", 8)
          .method("increment", {"value"}, {"value"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>("value",
                                          ctx.get<std::int64_t>("value") + 1);
                  }));
  return cluster.create_object(cls, NodeId(0));
}

double sample_sum(const std::vector<PromSample>& samples,
                  const std::string& prefix, const std::string& suffix) {
  double sum = 0;
  for (const PromSample& s : samples)
    if (s.name.rfind(prefix, 0) == 0 &&
        s.name.size() >= suffix.size() &&
        s.name.compare(s.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0)
      sum += s.value;
  return sum;
}

TEST(ScrapeWireTest, AdminScrapeAddsZeroAccountedTraffic) {
  const std::string dir = make_socket_dir();
  const ClusterConfig cfg = wire_config(3, dir);
  Cluster cluster(cfg);
  const ObjectId obj = setup_counter(cluster, cfg);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(i % 3)).committed);

  const TrafficCounter before = cluster.stats().total();
  ASSERT_GT(before.messages, 0u);

  AdminConn admin(dir, /*node=*/1);
  const std::vector<PromSample> first =
      parse_prometheus_text(admin.scrape());
  ASSERT_FALSE(first.empty());

  // The payload is the worker's real ledger: it delivered frames and says
  // which node it is.
  EXPECT_GT(sample_sum(first, "lotec_wire_delivered_", "_total"), 0.0);
  bool node_label_seen = false;
  for (const PromSample& s : first)
    for (const auto& [k, v] : s.labels)
      if (k == "node" && v == "1") node_label_seen = true;
  EXPECT_TRUE(node_label_seen) << "scrape payload lost its node label";

  // A second scrape — plus a hostile injected data frame in between — must
  // read back the IDENTICAL ledger: the admin channel itself is never
  // delivered, never relayed, never accounted, and cannot inject.
  admin.inject_data_frame();
  const std::vector<PromSample> second =
      parse_prometheus_text(admin.scrape());
  EXPECT_EQ(first.size(), second.size());
  EXPECT_EQ(sample_sum(first, "lotec_wire_", "_total"),
            sample_sum(second, "lotec_wire_", "_total"))
      << "scraping (or admin data injection) changed the worker's ledger";

  // Coordinator-side accounting is equally untouched.
  const TrafficCounter after = cluster.stats().total();
  EXPECT_EQ(after.messages, before.messages);
  EXPECT_EQ(after.bytes, before.bytes);
}

TEST(ScrapeWireTest, WorkerSurvivesAdminDisconnectAndKeepsWorking) {
  const std::string dir = make_socket_dir();
  const ClusterConfig cfg = wire_config(3, dir);
  Cluster cluster(cfg);
  const ObjectId obj = setup_counter(cluster, cfg);
  ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(1)).committed);

  {
    AdminConn admin(dir, /*node=*/1);
    (void)admin.scrape();
  }  // admin disconnects here — the worker must NOT treat it as shutdown

  // The fleet still executes work after the observer went away.
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(cluster.run_root(obj, "increment", NodeId(i % 3)).committed);
  EXPECT_EQ(cluster.peek<std::int64_t>(obj, "value"), 5);

  const auto* wt = dynamic_cast<const wire::WireTransport*>(
      &cluster.observe().transport());
  ASSERT_NE(wt, nullptr);
  EXPECT_TRUE(wt->ledger_complete());
}

TEST(ScrapeWireTest, ScrapeChannelIsBitIdenticalToAnUnobservedRun) {
  // The strongest form of the zero-accounting contract: a run that was
  // scraped mid-flight produces the identical coordinator ledger to one
  // that was never observed at all.
  auto run = [&](bool observed) {
    const std::string dir = make_socket_dir();
    const ClusterConfig cfg = wire_config(3, dir);
    Cluster cluster(cfg);
    const ObjectId obj = setup_counter(cluster, cfg);
    for (int i = 0; i < 3; ++i)
      EXPECT_TRUE(
          cluster.run_root(obj, "increment", NodeId(i % 3)).committed);
    if (observed) {
      AdminConn admin(dir, /*node=*/2);
      (void)admin.scrape();
      (void)admin.scrape();
    }
    for (int i = 0; i < 3; ++i)
      EXPECT_TRUE(
          cluster.run_root(obj, "increment", NodeId(i % 3)).committed);
    return cluster.stats().total();
  };
  const TrafficCounter unobserved = run(false);
  const TrafficCounter observed = run(true);
  EXPECT_EQ(unobserved.messages, observed.messages);
  EXPECT_EQ(unobserved.bytes, observed.bytes);
}

}  // namespace
}  // namespace lotec
