// lotec_top: live telemetry watcher (PROTOCOL.md §16).
//
// Two data sources, each refreshed on an interval and rendered as a
// per-window rate table:
//
//   lotec_top --dir <socket_dir> --nodes N [--tcp --ports p0,p1,...]
//       Wire scrape mode: connect to every worker's listen socket as the
//       kAdminNode observer and poll kStatsScrapeRequest.  Rows are
//       per-worker deliver/relay rates, lock grants, GDO serves — decoded
//       from the Prometheus text payload of each kStatsScrapeReply.  The
//       scrape channel is out-of-band: it adds exactly 0 accounted
//       messages/bytes to the run it watches.
//
//   lotec_top --jsonl <timeseries.jsonl>
//       Coordinator file mode: tail the TimeseriesCollector's JSONL stream
//       (soak/bench --timeseries runs write it) and render per-window
//       txn/s, p50/p99/p999 and lock/GDO/ring/snapshot counter rates.
//
// --iterations K bounds the refresh loop (default: run until the source
// goes away; CI and tests use --iterations 1).  Exit codes: 0 ok, 2 usage,
// 3 source unavailable.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"
#include "wire/frame.hpp"
#include "wire/socket.hpp"

namespace {

using namespace lotec;
using namespace lotec::wire;

struct Options {
  std::string socket_dir;
  std::uint32_t nodes = 0;
  bool tcp = false;
  std::vector<std::uint16_t> ports;
  std::string jsonl_path;
  std::uint32_t interval_ms = 1000;
  std::uint64_t iterations = 0;  // 0 = until the source disappears
};

int usage() {
  std::cerr
      << "usage: lotec_top --dir=<socket_dir> --nodes=N [--tcp --ports=..]\n"
      << "       lotec_top --jsonl=<timeseries.jsonl>\n"
      << "  common: [--interval-ms=1000] [--iterations=K]\n";
  return 2;
}

// --- wire scrape mode ----------------------------------------------------

class WorkerScraper {
 public:
  WorkerScraper(const Options& opt, std::uint32_t node)
      : node_(node) {
    fd_ = opt.tcp ? tcp_connect(opt.ports.at(node), Millis(2000))
                  : uds_connect(opt.socket_dir + "/node" +
                                    std::to_string(node) + ".sock",
                                Millis(2000));
    Frame hello;
    hello.type = FrameType::kHello;
    hello.src = kAdminNode;
    hello.dst = node;
    hello.correlation = ++corr_;
    write_full(fd_, encode_frame(hello));
    read_reply(FrameType::kHelloAck);
  }

  /// One scrape: returns name -> value for every sample in the worker's
  /// exposition payload.
  std::map<std::string, double> scrape() {
    Frame req;
    req.type = FrameType::kStatsScrapeRequest;
    req.src = kAdminNode;
    req.dst = node_;
    req.correlation = ++corr_;
    write_full(fd_, encode_frame(req));
    const std::string payload = read_reply(FrameType::kStatsScrapeReply);
    std::map<std::string, double> out;
    for (const PromSample& s : parse_prometheus_text(payload))
      out[s.name] += s.value;
    return out;
  }

 private:
  std::string read_reply(FrameType want) {
    const auto deadline = deadline_after(Millis(5000));
    for (;;) {
      std::array<std::byte, kFrameSize> header;
      read_full(fd_, header, deadline);
      const Frame f = decode_frame(header);
      std::string payload(static_cast<std::size_t>(f.payload_bytes), '\0');
      if (f.payload_bytes > 0)
        read_full(fd_,
                  std::span<std::byte>(
                      reinterpret_cast<std::byte*>(payload.data()),
                      payload.size()),
                  deadline);
      if (f.type == want) return payload;
      // Anything else on an admin connection is unexpected chatter; skip.
    }
  }

  std::uint32_t node_;
  Fd fd_;
  std::uint64_t corr_ = 0;
};

double rate_per_s(double delta, double interval_ms) {
  return interval_ms <= 0 ? 0.0 : delta * 1000.0 / interval_ms;
}

int run_wire_mode(const Options& opt) {
  std::vector<std::unique_ptr<WorkerScraper>> scrapers;
  for (std::uint32_t n = 0; n < opt.nodes; ++n) {
    try {
      scrapers.push_back(std::make_unique<WorkerScraper>(opt, n));
    } catch (const Error& e) {
      std::cerr << "lotec_top: worker " << n << ": " << e.what() << '\n';
      return 3;
    }
  }
  std::vector<std::map<std::string, double>> last(scrapers.size());
  static constexpr std::array<std::pair<const char*, const char*>, 5> kCols = {
      {{"lotec_wire_delivered_total", "dlvr/s"},
       {"lotec_wire_relayed_total", "relay/s"},
       {"lotec_wire_locks_granted_total", "grant/s"},
       {"lotec_wire_gdo_requests_served_total", "gdo/s"},
       {"lotec_wire_replica_syncs_applied_total", "sync/s"}}};
  for (std::uint64_t it = 0; opt.iterations == 0 || it < opt.iterations;
       ++it) {
    std::ostringstream frame;
    frame << std::left << std::setw(7) << "node";
    for (const auto& [metric, label] : kCols)
      frame << std::right << std::setw(11) << label;
    frame << '\n';
    for (std::size_t i = 0; i < scrapers.size(); ++i) {
      std::map<std::string, double> now;
      try {
        now = scrapers[i]->scrape();
      } catch (const Error& e) {
        std::cerr << "lotec_top: worker " << i << " scrape: " << e.what()
                  << '\n';
        return 3;
      }
      // Per-kind series share a prefix; fold them into the totals the
      // columns want.
      std::map<std::string, double> folded;
      for (const auto& [name, v] : now) {
        folded[name] += v;
        const auto dot = name.find("_total");
        if (dot != std::string::npos) {
          // lotec_wire_delivered_LockAcquireRequest_total -> fold into
          // lotec_wire_delivered_total.
          for (const char* base :
               {"lotec_wire_delivered_", "lotec_wire_relayed_"}) {
            if (name.rfind(base, 0) == 0 &&
                name.find("bytes") == std::string::npos &&
                name != std::string(base) + "total")
              folded[std::string(base) + "total"] += v;
          }
        }
      }
      frame << std::left << std::setw(7) << i;
      for (const auto& [metric, label] : kCols) {
        const double delta = folded[metric] - last[i][metric];
        frame << std::right << std::setw(11) << std::fixed
              << std::setprecision(1)
              << (it == 0 ? folded[metric]
                          : rate_per_s(delta, opt.interval_ms));
      }
      frame << '\n';
      last[i] = std::move(folded);
    }
    std::cout << frame.str() << std::flush;
    if (opt.iterations != 0 && it + 1 >= opt.iterations) break;
    std::this_thread::sleep_for(Millis(opt.interval_ms));
  }
  return 0;
}

// --- coordinator jsonl mode ----------------------------------------------

/// Minimal field scanners for the collector's own JSONL (one object per
/// line; the writer is ours, so the shapes are fixed).
std::optional<double> find_number(const std::string& line,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::optional<double> find_hist_field(const std::string& line,
                                      const std::string& hist,
                                      const std::string& field) {
  const std::string needle = "\"" + hist + "\":{";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const auto end = line.find('}', at);
  const std::string scope = line.substr(at, end - at);
  return find_number(scope, field);
}

double counter_delta(const std::string& line, const std::string& name) {
  return find_number(line, name).value_or(0.0);
}

int run_jsonl_mode(const Options& opt) {
  std::ifstream in(opt.jsonl_path);
  if (!in) {
    std::cerr << "lotec_top: cannot open " << opt.jsonl_path << '\n';
    return 3;
  }
  std::cout << std::left << std::setw(9) << "window" << std::right
            << std::setw(10) << "msgs" << std::setw(10) << "txn"
            << std::setw(9) << "p50" << std::setw(9) << "p99" << std::setw(9)
            << "p999" << std::setw(9) << "locks" << std::setw(9) << "gdo"
            << std::setw(9) << "snap" << std::setw(9) << "ring" << '\n';
  std::uint64_t printed = 0;
  std::string line;
  std::uint64_t idle_rounds = 0;
  for (;;) {
    if (!std::getline(in, line)) {
      in.clear();
      if (opt.iterations != 0 && printed >= opt.iterations) return 0;
      if (++idle_rounds * opt.interval_ms > 30000) return 0;  // writer gone
      std::this_thread::sleep_for(Millis(opt.interval_ms));
      continue;
    }
    idle_rounds = 0;
    if (line.empty()) continue;
    const auto window = find_number(line, "window");
    if (!window) continue;
    const auto open = find_number(line, "open").value_or(0.0);
    const auto close = find_number(line, "close").value_or(0.0);
    const std::string kAttempt = "span.family.attempt";
    std::cout << std::left << std::setw(9)
              << static_cast<std::uint64_t>(*window) << std::right
              << std::setw(10) << static_cast<std::uint64_t>(close - open)
              << std::setw(10)
              << static_cast<std::uint64_t>(counter_delta(line, "txn.commits"))
              << std::setw(9)
              << find_hist_field(line, kAttempt, "p50").value_or(0.0)
              << std::setw(9)
              << find_hist_field(line, kAttempt, "p99").value_or(0.0)
              << std::setw(9)
              << find_hist_field(line, kAttempt, "p999").value_or(0.0)
              << std::setw(9)
              << static_cast<std::uint64_t>(
                     counter_delta(line, "lock.local_grants"))
              << std::setw(9)
              << static_cast<std::uint64_t>(
                     counter_delta(line, "net.round_trips"))
              << std::setw(9)
              << static_cast<std::uint64_t>(
                     counter_delta(line, "snapshot.reads"))
              << std::setw(9)
              << static_cast<std::uint64_t>(
                     counter_delta(line, "ring.redirects"))
              << '\n'
              << std::flush;
    if (opt.iterations != 0 && ++printed >= opt.iterations) return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (key == "--dir") {
      opt.socket_dir = value;
    } else if (key == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--tcp") {
      opt.tcp = true;
    } else if (key == "--ports") {
      std::size_t start = 0;
      while (start <= value.size()) {
        const auto comma = value.find(',', start);
        const std::string item = value.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        if (!item.empty())
          opt.ports.push_back(
              static_cast<std::uint16_t>(std::stoul(item)));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "--jsonl") {
      opt.jsonl_path = value;
    } else if (key == "--interval-ms") {
      opt.interval_ms = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "--iterations") {
      opt.iterations = std::stoull(value);
    } else {
      return usage();
    }
  }
  const bool wire = !opt.socket_dir.empty() || opt.tcp;
  const bool jsonl = !opt.jsonl_path.empty();
  if (wire == jsonl) return usage();  // exactly one mode
  if (wire && opt.nodes == 0) return usage();
  if (opt.tcp && opt.ports.size() != opt.nodes) return usage();
  try {
    return wire ? run_wire_mode(opt) : run_jsonl_mode(opt);
  } catch (const std::exception& e) {
    std::cerr << "lotec_top: " << e.what() << '\n';
    return 3;
  }
}
