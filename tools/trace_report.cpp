// trace_report: analyze a message-trace CSV (produced by lotec_sim --trace
// or the sim library's dump_trace_csv) into per-kind / per-object / per-link
// rollups and a network time model — or, with the `spans` subcommand, roll
// up a span JSONL file (lotec_sim --spans) per phase, run critical-path
// analysis over the causal DAG, and optionally convert it to Chrome
// trace-event JSON for Perfetto.
//
//   trace_report trace.csv
//   trace_report trace.csv --top=10 --bitrate=100e6 --sw-cost=20
//   trace_report spans spans.jsonl [more.jsonl ...] [--out=chrome.json]
//                [--critical-path]
//
// `spans` accepts several JSONL files and merges them — the shape a
// distributed run produces (the coordinator's --spans file plus one
// --worker-spans file per lotec_worker process).  Merging is safe without
// rewriting ids: worker span ids carry the worker bit plus the node id in
// their high bits, and every record names its node, so lanes stay stable
// and collision-free per node no matter how many files are combined.
//
// Exit codes (the bench_check convention, plus 4):
//   0  report printed
//   1  input exists but is malformed
//   2  usage error (bad flag / missing argument)
//   3  input file missing / unreadable
//   4  input parsed but holds no events (empty trace)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>

#include "net/cost_model.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "obs/tail_attribution.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"

using namespace lotec;

namespace {

// Exit codes, named so the semantics can't drift between the two modes.
constexpr int kOk = 0;
constexpr int kMalformed = 1;
constexpr int kUsage = 2;
constexpr int kMissing = 3;
constexpr int kEmpty = 4;

void print_critical_path(const CriticalPath& cp) {
  print_section("Critical path");
  if (!cp.valid()) {
    std::cout << "no family.attempt span in the trace; nothing to analyze\n";
    return;
  }
  std::cout << "slowest root: family " << cp.family << " on node " << cp.node
            << ", wall " << cp.wall_ticks << " ticks";
  if (cp.trace_id != 0) std::cout << " (trace " << cp.trace_id << ")";
  std::cout << "\n";

  Table phases({"Phase", "Self ticks", "Share of wall"});
  for (std::size_t p = 0; p < kNumSpanPhases; ++p) {
    const std::uint64_t self = cp.phase_self[p];
    if (self == 0) continue;
    phases.row({std::string(to_string(static_cast<SpanPhase>(p))),
                fmt_u64(self),
                cp.wall_ticks
                    ? fmt_percent(static_cast<double>(self) /
                                  static_cast<double>(cp.wall_ticks))
                    : "-"});
  }
  phases.print();
  std::cout << "self-time total " << cp.phase_self_total() << " / wall "
            << cp.wall_ticks << " ticks\n";

  print_section("Longest blocking chain");
  Table chain({"Depth", "Phase", "Family", "Node", "Object", "Ticks", "Self"});
  for (std::size_t d = 0; d < cp.chain.size(); ++d) {
    const CriticalPathStep& s = cp.chain[d];
    chain.row({std::to_string(d), std::string(to_string(s.phase)),
               fmt_u64(s.family), fmt_u64(s.node),
               s.object == SpanRecord::kNoObject ? "-"
                                                 : "O" + std::to_string(s.object),
               fmt_u64(s.duration), fmt_u64(s.self)});
  }
  chain.print();

  if (!cp.by_kind.empty()) {
    print_section("Messages on this trace");
    Table kinds({"Kind", "Messages", "Bytes"});
    for (const auto& [name, c] : cp.by_kind)
      kinds.row({name, fmt_u64(c.messages), fmt_u64(c.bytes)});
    kinds.print();
  }
}

int run_spans(int argc, char** argv) {
  std::string out_path;
  bool critical_path = false;
  bool tail_attribution = false;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    else if (arg == "--critical-path") critical_path = true;
    else if (arg == "--tail-attribution") tail_attribution = true;
    else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      return kUsage;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: trace_report spans <spans.jsonl> [more.jsonl ...] "
                 "[--out=chrome.json] [--critical-path] "
                 "[--tail-attribution]\n";
    return kUsage;
  }

  std::vector<SpanRecord> spans;
  std::vector<MessageRecord> messages;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return kMissing;
    }
    const std::size_t before = spans.size() + messages.size();
    try {
      load_obs_jsonl(in, spans, messages);
    } catch (const std::exception& e) {
      std::cerr << "parse error in " << path << ": " << e.what() << "\n";
      return kMalformed;
    }
    if (inputs.size() > 1)
      std::cout << path << ": "
                << (spans.size() + messages.size() - before) << " records\n";
  }
  if (spans.empty() && messages.empty()) {
    std::cerr << "empty trace: "
              << (inputs.size() == 1 ? inputs[0]
                                     : std::to_string(inputs.size()) +
                                           " merged files")
              << " holds no spans or messages "
                 "(was the run traced? pass --spans to lotec_sim)\n";
    return kEmpty;
  }

  struct PhaseAgg {
    std::uint64_t count = 0;
    std::uint64_t ticks = 0;
  };
  std::map<std::string, PhaseAgg> by_phase;
  std::map<std::uint32_t, PhaseAgg> by_node;
  std::uint64_t total_ticks = 0;
  for (const SpanRecord& s : spans) {
    PhaseAgg& agg = by_phase[std::string(to_string(s.phase))];
    ++agg.count;
    agg.ticks += s.end - s.begin;
    PhaseAgg& node_agg = by_node[s.node];
    ++node_agg.count;
    node_agg.ticks += s.end - s.begin;
    total_ticks += s.end - s.begin;
  }

  std::cout << "spans: " << spans.size() << " records, " << messages.size()
            << " messages, " << by_phase.size() << " phases, " << total_ticks
            << " ticks of tracked time\n";
  print_section("By phase");
  Table table({"Phase", "Spans", "Ticks", "Ticks/span", "Share"});
  for (const auto& [name, agg] : by_phase)
    table.row({name, fmt_u64(agg.count), fmt_u64(agg.ticks),
               fmt_double(static_cast<double>(agg.ticks) /
                              static_cast<double>(agg.count),
                          1),
               total_ticks
                   ? fmt_percent(static_cast<double>(agg.ticks) /
                                 static_cast<double>(total_ticks))
                   : "-"});
  table.print();

  // One lane per node in Perfetto; the same breakdown here makes merged
  // multi-worker input legible without leaving the terminal.
  if (by_node.size() > 1) {
    print_section("By node");
    Table nodes({"Node", "Spans", "Ticks"});
    for (const auto& [node, agg] : by_node)
      nodes.row({std::to_string(node), fmt_u64(agg.count),
                 fmt_u64(agg.ticks)});
    nodes.print();
  }

  if (critical_path) print_critical_path(analyze_critical_path(spans, messages));

  if (tail_attribution) {
    print_section("Tail attribution");
    write_tail_attribution(analyze_tail_attribution(spans), std::cout);
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write " << out_path << "\n";
      return kMissing;
    }
    write_chrome_trace(spans, os);
    std::cout << "\nwrote " << out_path
              << " (load it at ui.perfetto.dev or chrome://tracing)\n";
  }
  return kOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_report <trace.csv> [--top=N] [--bitrate=BPS] "
                 "[--sw-cost=US]\n"
                 "       trace_report spans <spans.jsonl> [more.jsonl ...] "
                 "[--out=chrome.json] [--critical-path] "
                 "[--tail-attribution]\n";
    return kUsage;
  }
  if (std::string(argv[1]) == "spans") return run_spans(argc, argv);
  std::size_t top = 10;
  double bitrate = NetworkCostModel::kEthernet100Mbps;
  double sw_cost_us = 20.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) top = std::stoull(arg.substr(6));
    else if (arg.rfind("--bitrate=", 0) == 0) bitrate = std::stod(arg.substr(10));
    else if (arg.rfind("--sw-cost=", 0) == 0) sw_cost_us = std::stod(arg.substr(10));
    else {
      std::cerr << "unknown flag " << arg << "\n";
      return kUsage;
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return kMissing;
  }
  std::vector<TraceEvent> events;
  try {
    events = load_trace_csv(in);
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return kMalformed;
  }
  if (events.empty()) {
    std::cerr << "empty trace: " << argv[1] << " holds no messages (was the "
                 "run recorded? pass --trace to lotec_sim)\n";
    return kEmpty;
  }

  const NetworkCostModel model(bitrate, sw_cost_us);
  std::uint64_t total_bytes = 0;
  std::map<std::string, TrafficCounter> by_kind;
  std::map<std::uint64_t, TrafficCounter> by_object;
  std::map<std::pair<std::uint32_t, std::uint32_t>, TrafficCounter> by_link;
  for (const TraceEvent& e : events) {
    total_bytes += e.total_bytes;
    by_kind[std::string(to_string(e.kind))].add(e.total_bytes);
    if (e.object.valid()) by_object[e.object.value()].add(e.total_bytes);
    by_link[{e.src.value(), e.dst.value()}].add(e.total_bytes);
  }

  std::cout << "trace: " << events.size() << " messages, " << total_bytes
            << " bytes; modeled time "
            << fmt_double(
                   model.total_time_us(events.size(), total_bytes) / 1000.0,
                   1)
            << "ms @" << bitrate / 1e6 << "Mbps/" << sw_cost_us << "us\n";

  print_section("By message kind");
  Table kinds({"Kind", "Messages", "Bytes", "Share"});
  for (const auto& [name, c] : by_kind)
    kinds.row({name, fmt_u64(c.messages), fmt_u64(c.bytes),
               fmt_percent(static_cast<double>(c.bytes) /
                           static_cast<double>(total_bytes))});
  kinds.print();

  print_section("Hottest objects");
  std::vector<std::pair<std::uint64_t, TrafficCounter>> objs(
      by_object.begin(), by_object.end());
  std::sort(objs.begin(), objs.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  Table hot({"Object", "Messages", "Bytes", "Modeled time"});
  for (std::size_t i = 0; i < objs.size() && i < top; ++i)
    hot.row({"O" + std::to_string(objs[i].first),
             fmt_u64(objs[i].second.messages), fmt_u64(objs[i].second.bytes),
             fmt_double(model.total_time_us(objs[i].second.messages,
                                            objs[i].second.bytes) /
                            1000.0,
                        1) +
                 "ms"});
  hot.print();

  print_section("Busiest links");
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                        TrafficCounter>>
      links(by_link.begin(), by_link.end());
  std::sort(links.begin(), links.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  Table busiest({"Link", "Messages", "Bytes"});
  for (std::size_t i = 0; i < links.size() && i < top; ++i)
    busiest.row({std::to_string(links[i].first.first) + " -> " +
                     std::to_string(links[i].first.second),
                 fmt_u64(links[i].second.messages),
                 fmt_u64(links[i].second.bytes)});
  busiest.print();
  return kOk;
}
