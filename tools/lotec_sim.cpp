// lotec_sim: command-line driver for the simulation harness.
//
// Runs a randomized nested-object-transaction workload under one or more
// consistency protocols and prints the traffic/outcome report — the same
// machinery as the figure benchmarks, but with every knob on the command
// line for interactive exploration.
//
//   lotec_sim --protocols=cotec,otec,lotec --objects=20 --min-pages=10
//             --max-pages=20 --txns=300 --theta=0.8 --nodes=16
//
// Run `lotec_sim --help` for the full knob list.
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "net/cost_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include <fstream>

#include "sim/scenarios.hpp"
#include "sim/trace.hpp"
#include "sim/validate.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

struct Args {
  WorkloadSpec spec;
  ExperimentOptions options;
  std::vector<ProtocolKind> protocols = {ProtocolKind::kCotec,
                                         ProtocolKind::kOtec,
                                         ProtocolKind::kLotec};
  bool per_object = false;
  bool time_model = false;
  bool validate = false;
  bool faults = false;
  std::uint64_t fault_seed = 42;
  std::string trace_path;
  std::string counters_out;
};

void usage() {
  std::cout <<
      "lotec_sim — LOTEC workload simulator\n\n"
      "Workload:\n"
      "  --objects=N          shared objects (default 20)\n"
      "  --min-pages=N        min object size in pages (1)\n"
      "  --max-pages=N        max object size in pages (5)\n"
      "  --txns=N             root transactions (300)\n"
      "  --theta=F            Zipf contention skew (0 = uniform)\n"
      "  --touched=F          fraction of attrs a method touches (0.4)\n"
      "  --write-frac=F       fraction of touched attrs written (0.6)\n"
      "  --read-methods=F     fraction of pure-reader methods (0.2)\n"
      "  --depth=N            max nesting depth (3)\n"
      "  --child-prob=F       per-slot child probability (0.45)\n"
      "  --abort-prob=F       injected sub-txn failure probability (0)\n"
      "  --coverage=F         prediction coverage, <1 = demand fetches (1)\n"
      "  --seed=N             workload seed (0xF162)\n"
      "  --flat               non-hierarchical child targets (more deadlocks)\n"
      "Cluster:\n"
      "  --nodes=N            sites (16)\n"
      "  --page-size=N        DSM page size in bytes (4096)\n"
      "  --cache=N            per-node cache budget in pages (0 = unbounded)\n"
      "  --multicast          multicast-capable network\n"
      "  --batch              coalesce same-round directory traffic into\n"
      "                       batch frames (physical-only; PROTOCOL.md 13)\n"
      "  --prefetch           Section 5.1 lock pre-acquisition hints\n"
      "  --read-fraction=F    share of families submitted as declared\n"
      "                       read-only (shadow reader scripts) (0)\n"
      "  --mv-read            snapshot-isolated reads for read-only\n"
      "                       families (PROTOCOL.md 14; zero lock traffic)\n"
      "  --shadow-pages       shadow-page undo instead of byte-range log\n"
      "Run:\n"
      "  --protocols=a,b,...  cotec|otec|lotec|rc|lotec-dsd (default cotec,otec,lotec)\n"
      "  --per-object         print the per-object byte series\n"
      "  --time-model         print the Figure 6-8 time sweep\n"
      "  --validate           check quiescent-state invariants afterwards\n"
      "  --trace=FILE         dump a message-trace CSV of the last protocol\n"
      "  --spans=FILE         record phase spans; writes FILE (JSON lines)\n"
      "                       and FILE.chrome.json (Perfetto-loadable)\n"
      "  --faults[=SEED]      chaos preset: crash+restart two nodes mid-run\n"
      "                       with mild message drop (seed defaults to 42)\n"
      "  --flight-dump=FILE   dump the always-on flight recorder to FILE on\n"
      "                       every node-crash event (post-mortem black box)\n"
      "  --scenario=NAME      preset workload: fig2|fig3|fig4|fig5 (paper\n"
      "                       scenarios; overrides the workload knobs)\n"
      "  --counters-out=FILE  write per-message-kind counts of the last\n"
      "                       protocol as JSON (golden-counter diffing)\n"
      "Distributed (wire transport, src/wire):\n"
      "  --distributed=N      run N nodes as real OS processes joined by\n"
      "                       Unix-domain sockets (sets --nodes=N); every\n"
      "                       accounted message is physically shipped and\n"
      "                       ledger-cross-checked at batch end\n"
      "  --tcp                TCP loopback sockets instead of Unix-domain\n"
      "  --worker=PATH        lotec_worker binary (default: $LOTEC_WORKER,\n"
      "                       then next to this executable)\n"
      "  --worker-spans=PFX   each worker writes PFX.node<K>.jsonl with one\n"
      "                       wire.deliver span per delivered frame\n";
}

ProtocolKind parse_protocol(const std::string& name) {
  if (name == "cotec") return ProtocolKind::kCotec;
  if (name == "otec") return ProtocolKind::kOtec;
  if (name == "lotec") return ProtocolKind::kLotec;
  if (name == "rc") return ProtocolKind::kRc;
  if (name == "lotec-dsd") return ProtocolKind::kLotecDsd;
  throw UsageError("unknown protocol '" + name + "'");
}

bool parse_one(Args& args, const std::string& arg) {
  const auto eq = arg.find('=');
  const std::string key = arg.substr(0, eq);
  const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
  const auto u = [&] { return static_cast<std::size_t>(std::stoull(val)); };
  const auto f = [&] { return std::stod(val); };

  if (key == "--objects") args.spec.num_objects = u();
  else if (key == "--min-pages") args.spec.min_pages = u();
  else if (key == "--max-pages") args.spec.max_pages = u();
  else if (key == "--txns") args.spec.num_transactions = u();
  else if (key == "--theta") args.spec.contention_theta = f();
  else if (key == "--touched") args.spec.touched_attr_fraction = f();
  else if (key == "--write-frac") args.spec.write_fraction = f();
  else if (key == "--read-methods") args.spec.read_method_fraction = f();
  else if (key == "--depth") args.spec.max_depth = u();
  else if (key == "--child-prob") args.spec.child_probability = f();
  else if (key == "--abort-prob") args.spec.abort_probability = f();
  else if (key == "--coverage") args.spec.prediction_coverage = f();
  else if (key == "--seed") args.spec.seed = std::stoull(val);
  else if (key == "--flat") args.spec.hierarchical_targets = false;
  else if (key == "--nodes") args.options.nodes = u();
  else if (key == "--page-size") args.options.page_size =
      static_cast<std::uint32_t>(u());
  else if (key == "--cache") args.options.cache_capacity_pages = u();
  else if (key == "--multicast") args.options.multicast = true;
  else if (key == "--batch") args.options.batch_messages = true;
  else if (key == "--prefetch") args.options.prefetch_hints = true;
  else if (key == "--read-fraction") args.options.read_only_fraction = f();
  else if (key == "--mv-read") args.options.mv_read = true;
  else if (key == "--shadow-pages") args.options.undo =
      UndoStrategy::kShadowPage;
  else if (key == "--protocols") {
    args.protocols.clear();
    std::stringstream ss(val);
    std::string item;
    while (std::getline(ss, item, ',')) args.protocols.push_back(
        parse_protocol(item));
  }
  else if (key == "--per-object") args.per_object = true;
  else if (key == "--time-model") args.time_model = true;
  else if (key == "--validate") args.validate = true;
  else if (key == "--trace") args.trace_path = val;
  else if (key == "--spans") {
    args.options.trace_spans = true;
    args.options.spans_jsonl = val;
    args.options.chrome_trace = val + ".chrome.json";
  }
  else if (key == "--faults") {
    args.faults = true;
    if (!val.empty()) args.fault_seed = std::stoull(val);
  }
  else if (key == "--flight-dump") args.options.flight_dump = val;
  else if (key == "--scenario") {
    const std::uint64_t keep_seed = args.spec.seed;
    if (val == "fig2") args.spec = scenarios::medium_high_contention();
    else if (val == "fig3") args.spec = scenarios::large_high_contention();
    else if (val == "fig4") args.spec = scenarios::medium_moderate_contention();
    else if (val == "fig5") args.spec = scenarios::large_moderate_contention();
    else throw UsageError("unknown scenario '" + val +
                          "' (fig2|fig3|fig4|fig5)");
    (void)keep_seed;  // presets carry their own seeds (paper fidelity)
  }
  else if (key == "--counters-out") args.counters_out = val;
  else if (key == "--distributed") {
    args.options.wire.enabled = true;
    if (!val.empty()) args.options.nodes = u();
  }
  else if (key == "--tcp") args.options.wire.tcp = true;
  else if (key == "--worker") args.options.wire.worker_path = val;
  else if (key == "--worker-spans") args.options.wire.worker_spans = val;
  else return false;
  return true;
}

/// Per-message-kind counts of one run as a small JSON document — the
/// artifact CI diffs between an in-process and a --distributed run of the
/// same scenario (they must be byte-identical).
void write_counters_json(const ScenarioResult& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw UsageError("cannot open --counters-out file: " + path);
  out << "{\n  \"protocol\": \"" << to_string(r.protocol) << "\",\n"
      << "  \"total\": {\"messages\": " << r.total.messages
      << ", \"bytes\": " << r.total.bytes << "},\n  \"by_kind\": {\n";
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kNumKinds);
       ++k) {
    const auto kind = static_cast<MessageKind>(k);
    const std::uint64_t msgs = r.counter(
        "net.kind." + std::string(to_string(kind)) + ".messages");
    const std::uint64_t bytes =
        r.counter("net.kind." + std::string(to_string(kind)) + ".bytes");
    out << "    \"" << to_string(kind) << "\": {\"messages\": " << msgs
        << ", \"bytes\": " << bytes << "}"
        << (k + 1 < static_cast<std::size_t>(MessageKind::kNumKinds) ? ","
                                                                     : "")
        << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  args.spec = WorkloadSpec{};
  args.spec.num_objects = 20;
  args.spec.seed = 0xF162;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    // `--distributed 4` reads naturally in docs and CI scripts; fold the
    // space-separated node count into the uniform key=value form.
    if (arg == "--distributed" && i + 1 < argc &&
        std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
      arg += std::string("=") + argv[++i];
    try {
      if (!parse_one(args, arg)) {
        std::cerr << "unknown flag: " << arg << " (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad flag " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  if (args.faults) {
    // Built after the flag loop so --nodes takes effect regardless of flag
    // order.  Victims: node 1 (a directory home under the default
    // partitioning) and the last node; run_scenario turns on GDO
    // replication automatically for node faults.
    args.options.fault = fault_presets::chaos(
        NodeId(1),
        NodeId(static_cast<std::uint32_t>(args.options.nodes - 1)),
        args.fault_seed);
  }

  const Workload workload(args.spec);
  std::cout << "workload: " << workload.num_objects() << " objects, "
            << args.spec.num_transactions << " roots, "
            << workload.total_script_nodes() << " invocations, theta="
            << args.spec.contention_theta << ", nodes=" << args.options.nodes
            << "\n";

  std::vector<ScenarioResult> results;
  for (const ProtocolKind protocol : args.protocols) {
    ExperimentOptions options = args.options;
    if (args.protocols.size() > 1 && options.trace_spans) {
      options.spans_jsonl = protocol_trace_path(options.spans_jsonl, protocol);
      options.chrome_trace =
          protocol_trace_path(options.chrome_trace, protocol);
    }
    if (args.protocols.size() > 1 && !options.flight_dump.empty())
      options.flight_dump = protocol_trace_path(options.flight_dump, protocol);
    results.push_back(run_scenario(workload, protocol, options));
  }

  Table table({"Protocol", "Committed", "Aborted", "DL retries", "Messages",
               "Bytes", "Demand", "Local grants"});
  for (const auto& r : results)
    table.row({std::string(to_string(r.protocol)),
               std::to_string(r.committed), std::to_string(r.aborted),
               fmt_u64(r.counter("txn.deadlock_retries")), fmt_u64(r.total.messages),
               fmt_u64(r.total.bytes), fmt_u64(r.counter("page.demand_fetches")),
               fmt_u64(r.counter("lock.local_ops"))});
  table.print();

  if (!args.counters_out.empty()) {
    write_counters_json(results.back(), args.counters_out);
    std::cout << "\ncounters: " << to_string(results.back().protocol)
              << " -> " << args.counters_out << "\n";
  }

  if (args.options.wire.enabled)
    std::cout << "\nwire: " << args.options.nodes << " worker processes over "
              << (args.options.wire.tcp ? "TCP loopback" : "unix sockets")
              << "; per-worker delivery ledgers cross-checked against "
                 "shipped counters\n";

  if (args.faults) {
    std::cout << "\nfaults: ";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const FaultStats& fs = results[i].fault_stats;
      if (i) std::cout << ", ";
      std::cout << to_string(results[i].protocol) << " crashes=" << fs.crashes
                << " restarts=" << fs.restarts << " dropped=" << fs.dropped;
    }
    if (!args.options.flight_dump.empty())
      std::cout << "\nflight recorder -> " << args.options.flight_dump
                << " (one dump per crash; later crashes get .2, .3, ...)";
    std::cout << "\n";
  }

  if (args.options.trace_spans) {
    std::cout << "\nspans: ";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i) std::cout << ", ";
      std::cout << to_string(results[i].protocol) << "="
                << results[i].spans.size();
    }
    std::cout << " -> "
              << (args.protocols.size() == 1
                      ? args.options.spans_jsonl
                      : protocol_trace_path(args.options.spans_jsonl,
                                            args.protocols.front()) + " ...")
              << " (+ .chrome.json)\n";
  }

  if (args.per_object) {
    print_section("Per-object bytes");
    std::vector<std::string> headers = {"Object"};
    for (const auto& r : results)
      headers.push_back(std::string(to_string(r.protocol)));
    Table po(headers);
    for (const ObjectId id : results.front().object_ids) {
      std::vector<std::string> row = {"O" + std::to_string(id.value())};
      for (const auto& r : results)
        row.push_back(fmt_u64(r.object_traffic(id).bytes));
      po.row(std::move(row));
    }
    po.print();
  }

  if (args.time_model) {
    print_section("Aggregate time model (us)");
    std::vector<std::string> headers = {"Network", "SW cost"};
    for (const auto& r : results)
      headers.push_back(std::string(to_string(r.protocol)));
    Table t2(headers);
    const std::map<std::string, double> nets = {
        {"10Mbps", NetworkCostModel::kEthernet10Mbps},
        {"100Mbps", NetworkCostModel::kEthernet100Mbps},
        {"1Gbps", NetworkCostModel::kEthernet1Gbps}};
    for (const auto& [name, bps] : nets)
      for (const double sw : NetworkCostModel::software_cost_sweep_us()) {
        const NetworkCostModel model(bps, sw);
        std::vector<std::string> row = {name, fmt_double(sw, 1) + "us"};
        for (const auto& r : results)
          row.push_back(fmt_double(
              model.total_time_us(r.total.messages, r.total.bytes), 0));
        t2.row(std::move(row));
      }
    t2.print();
  }

  if (!args.trace_path.empty()) {
    // Re-run the last protocol with tracing on and dump the CSV.
    ClusterConfig cfg;
    cfg.nodes = args.options.nodes;
    cfg.page_size = args.options.page_size;
    cfg.protocol = args.protocols.back();
    cfg.seed = args.options.cluster_seed;
    cfg.cache_capacity_pages = args.options.cache_capacity_pages;
    Cluster cluster(cfg);
    ClusterObservation obs = cluster.observe();
    obs.stats().enable_trace(1u << 22);
    (void)cluster.execute(workload.instantiate(cluster));
    std::ofstream out(args.trace_path);
    dump_trace_csv(obs.stats().trace(), out);
    std::cout << "\ntrace: " << obs.stats().trace().size()
              << " messages -> " << args.trace_path;
    if (obs.stats().trace_dropped() > 0)
      std::cout << " (" << obs.stats().trace_dropped() << " dropped)";
    std::cout << "\n";
  }

  if (args.validate) {
    // Re-run the last protocol on a fresh cluster and validate it (the
    // harness tears its clusters down; validation needs a live one).
    ClusterConfig cfg;
    cfg.nodes = args.options.nodes;
    cfg.page_size = args.options.page_size;
    cfg.protocol = args.protocols.back();
    cfg.seed = args.options.cluster_seed;
    cfg.cache_capacity_pages = args.options.cache_capacity_pages;
    Cluster cluster(cfg);
    (void)cluster.execute(workload.instantiate(cluster));
    const auto violations = validate_quiescent(cluster);
    if (violations.empty()) {
      std::cout << "\nvalidation: all quiescent-state invariants hold\n";
    } else {
      std::cout << "\nvalidation FAILED:\n";
      for (const auto& v : violations) std::cout << "  " << v << "\n";
      return 1;
    }
  }
  return 0;
}
