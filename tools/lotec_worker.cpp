// lotec_worker: one LOTEC node as a real OS process.
//
// Spawned by the WorkerSupervisor (src/wire/launcher.cpp) behind
// `lotec_sim --distributed N`; not meant to be run by hand.  The listen
// socket is pre-bound by the supervisor and inherited via --listen-fd.
//
//   lotec_worker --node=K --nodes=N --listen-fd=F
//                (--dir=DIR | --tcp --ports=p0,p1,...)
//                [--spans=FILE] [--relay-timeout-ms=MS]
#include <cstdio>
#include <exception>

#include "wire/worker.hpp"

int main(int argc, char** argv) {
  try {
    const lotec::wire::WorkerOptions options =
        lotec::wire::parse_worker_options(argc, argv);
    return lotec::wire::worker_main(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lotec_worker: %s\n", e.what());
    return 1;
  }
}
