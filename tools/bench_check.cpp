// CI perf-smoke gate: compare freshly generated BENCH_*.json files against
// the committed baselines in bench/baselines/ and fail when any metric
// drifts beyond the tolerance (default +/-10%).
//
// Usage: bench_check <baseline_dir> <candidate_dir> [tolerance] [FILE=TOL...]
//   Every BENCH_*.json in <baseline_dir> must exist in <candidate_dir> with
//   the same rows (by label) and every numeric field within tolerance of
//   its baseline value.  Extra candidate files/fields are ignored, so new
//   benches can land before their baselines do.
//
//   Trailing FILE=TOL arguments override the tolerance per baseline file,
//   e.g. `BENCH_walltime.json=0.25` — wall-clock benches get a generous
//   band while the deterministic counter benches stay tight.
//
//   FILE:ROWPREFIX=TOL narrows an override to the rows of FILE whose label
//   starts with ROWPREFIX, e.g. `BENCH_throughput.json:window_=0.30` — the
//   per-window telemetry rows ride a wide band while the same file's
//   aggregate rows stay on the file/default tolerance.  Prefix-scoped rows
//   are also allowed to disappear from the candidate's tail: a faster run
//   closes fewer windows, so a missing `window_7` is reported as skipped,
//   not as missing data.
//
// Exit codes (CI distinguishes "perf regressed" from "bench never ran"):
//   0  every metric within tolerance
//   1  at least one metric out of tolerance (and nothing missing)
//   2  usage error
//   3  missing data: candidate file absent, unparseable JSON, row/field
//      missing from the candidate, or no BENCH_*.json baselines at all
//
// The parser below handles exactly the flat format bench/json_out.hpp
// emits ({"bench": ..., "rows": [{"label": ..., key: number, ...}]}) — the
// repo takes no JSON library dependency for a 60-line need.
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchFile {
  // row label -> field name -> value
  std::map<std::string, std::map<std::string, double>> rows;
};

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  if (s.at(i) != '"') throw std::runtime_error("expected '\"'");
  std::string out;
  for (++i; s.at(i) != '"'; ++i) {
    if (s[i] == '\\') ++i;  // json_out never escapes, but stay safe
    out.push_back(s[i]);
  }
  ++i;
  return out;
}

double parse_number(const std::string& s, std::size_t& i) {
  std::size_t end = i;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) || s[end] == '-' ||
          s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E'))
    ++end;
  const double v = std::stod(s.substr(i, end - i));
  i = end;
  return v;
}

/// Parse one {"label": "...", key: number, ...} row object.
void parse_row(const std::string& s, std::size_t& i, BenchFile& out) {
  if (s.at(i) != '{') throw std::runtime_error("expected '{'");
  ++i;
  std::string label;
  std::map<std::string, double> fields;
  while (true) {
    skip_ws(s, i);
    const std::string key = parse_string(s, i);
    skip_ws(s, i);
    if (s.at(i) != ':') throw std::runtime_error("expected ':'");
    ++i;
    skip_ws(s, i);
    if (key == "label")
      label = parse_string(s, i);
    else
      fields[key] = parse_number(s, i);
    skip_ws(s, i);
    if (s.at(i) == ',') {
      ++i;
      continue;
    }
    if (s.at(i) == '}') {
      ++i;
      break;
    }
    throw std::runtime_error("expected ',' or '}' in row");
  }
  if (label.empty()) throw std::runtime_error("row without label");
  out.rows[label] = std::move(fields);
}

BenchFile parse_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path.string());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string s = buf.str();

  BenchFile out;
  std::size_t i = s.find("\"rows\"");
  if (i == std::string::npos) throw std::runtime_error("no rows array");
  i = s.find('[', i);
  if (i == std::string::npos) throw std::runtime_error("no '[' after rows");
  ++i;
  while (true) {
    skip_ws(s, i);
    if (s.at(i) == ']') break;
    parse_row(s, i, out);
    skip_ws(s, i);
    if (s.at(i) == ',') ++i;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: bench_check <baseline_dir> <candidate_dir> "
                 "[tolerance=0.10] [FILE=TOL...] [FILE:ROWPREFIX=TOL...]\n";
    return 2;
  }
  const std::filesystem::path baseline_dir = argv[1];
  const std::filesystem::path candidate_dir = argv[2];
  double default_tolerance = 0.10;
  std::map<std::string, double> per_file_tolerance;
  // file -> (row-label prefix -> tolerance); prefix rows may also vanish
  // from the candidate's tail (see the header comment).
  std::map<std::string, std::map<std::string, double>> per_row_tolerance;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      default_tolerance = std::atof(arg.c_str());
    } else {
      const std::string target = arg.substr(0, eq);
      const double tol = std::atof(arg.substr(eq + 1).c_str());
      const std::size_t colon = target.find(':');
      if (colon == std::string::npos)
        per_file_tolerance[target] = tol;
      else
        per_row_tolerance[target.substr(0, colon)]
                         [target.substr(colon + 1)] = tol;
    }
  }

  int checked = 0, out_of_tolerance = 0, missing = 0, skipped_rows = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json")
      continue;
    const auto override_it = per_file_tolerance.find(name);
    const double tolerance = override_it != per_file_tolerance.end()
                                 ? override_it->second
                                 : default_tolerance;
    const std::filesystem::path candidate = candidate_dir / name;
    if (!std::filesystem::exists(candidate)) {
      std::cerr << "FAIL " << name << ": candidate file missing (bench not "
                << "run?)\n";
      ++missing;
      continue;
    }
    BenchFile base, cand;
    try {
      base = parse_file(entry.path());
      cand = parse_file(candidate);
    } catch (const std::exception& e) {
      std::cerr << "FAIL " << name << ": " << e.what() << '\n';
      ++missing;
      continue;
    }
    const auto row_overrides_it = per_row_tolerance.find(name);
    for (const auto& [label, fields] : base.rows) {
      // Longest matching row-prefix override, if any, wins over the file
      // tolerance for this row.
      double row_tolerance = tolerance;
      bool prefix_scoped = false;
      if (row_overrides_it != per_row_tolerance.end()) {
        std::size_t best_len = 0;
        for (const auto& [prefix, tol] : row_overrides_it->second) {
          if (label.rfind(prefix, 0) == 0 && prefix.size() >= best_len) {
            best_len = prefix.size();
            row_tolerance = tol;
            prefix_scoped = true;
          }
        }
      }
      const auto row = cand.rows.find(label);
      if (row == cand.rows.end()) {
        if (prefix_scoped) {
          std::cout << "skip " << name << ": windowed row '" << label
                    << "' absent from candidate (run closed fewer "
                    << "windows)\n";
          ++skipped_rows;
          continue;
        }
        std::cerr << "FAIL " << name << ": row '" << label
                  << "' missing from candidate\n";
        ++missing;
        continue;
      }
      for (const auto& [key, expect] : fields) {
        const auto got = row->second.find(key);
        if (got == row->second.end()) {
          std::cerr << "FAIL " << name << ": " << label << "." << key
                    << " missing from candidate\n";
          ++missing;
          continue;
        }
        ++checked;
        const double actual = got->second;
        // Tolerance is relative to the baseline; an exact-zero baseline
        // demands an exact zero (these are deterministic simulations).
        const bool ok =
            expect == 0.0
                ? actual == 0.0
                : std::abs(actual - expect) <=
                      row_tolerance * std::abs(expect);
        if (!ok) {
          std::cerr << "FAIL " << name << ": " << label << "." << key << " = "
                    << actual << ", baseline " << expect << " (|delta| "
                    << std::abs(actual / expect - 1.0) * 100.0 << "% > "
                    << row_tolerance * 100.0 << "%)\n";
          ++out_of_tolerance;
        }
      }
    }
  }

  if (checked == 0 && missing == 0) {
    std::cerr << "FAIL: no BENCH_*.json baselines found in " << baseline_dir
              << '\n';
    return 3;
  }
  if (missing) {
    std::cerr << missing << " metric(s)/file(s) missing"
              << (out_of_tolerance
                      ? ", " + std::to_string(out_of_tolerance) +
                            " out of tolerance"
                      : std::string())
              << " (" << checked << " checked)\n";
    return 3;
  }
  if (out_of_tolerance) {
    std::cerr << out_of_tolerance << " metric(s) out of tolerance ("
              << checked << " checked)\n";
    return 1;
  }
  std::cout << "bench_check: " << checked << " metrics within "
            << default_tolerance * 100.0 << "% of baseline"
            << (per_file_tolerance.empty()
                    ? std::string()
                    : " (" + std::to_string(per_file_tolerance.size()) +
                          " per-file override(s))")
            << (skipped_rows
                    ? ", " + std::to_string(skipped_rows) +
                          " windowed row(s) skipped"
                    : std::string())
            << '\n';
  return 0;
}
