// soak: long-running randomized stress with invariant validation.
//
// Each iteration generates a fresh random workload (random geometry,
// contention, abort injection, protocol, scheduler, cache budget), runs it,
// and validates the quiescent-state invariants plus cross-protocol final-
// state equivalence.  Any violation aborts with a reproduction line.
//
//   soak [iterations=50] [base-seed=1]
#include <iostream>

#include "sim/validate.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

struct Draw {
  WorkloadSpec spec;
  ClusterConfig cfg;
};

Draw random_setup(Rng& rng) {
  Draw d;
  d.spec.num_objects = 4 + rng.below(20);
  d.spec.min_pages = 1 + rng.below(3);
  d.spec.max_pages = d.spec.min_pages + rng.below(8);
  d.spec.num_transactions = 30 + rng.below(120);
  d.spec.contention_theta = rng.uniform() * 1.1;
  d.spec.touched_attr_fraction = 0.15 + rng.uniform() * 0.5;
  d.spec.write_fraction = 0.3 + rng.uniform() * 0.6;
  d.spec.read_method_fraction = rng.uniform() * 0.4;
  d.spec.max_depth = 1 + rng.below(4);
  d.spec.child_probability = rng.uniform() * 0.6;
  d.spec.abort_probability = rng.chance(0.4) ? rng.uniform() * 0.3 : 0.0;
  d.spec.prediction_coverage = rng.chance(0.3) ? 0.4 + rng.uniform() * 0.6
                                               : 1.0;
  d.spec.hierarchical_targets = !rng.chance(0.2);
  d.spec.seed = rng.next();

  d.cfg.nodes = 2 + rng.below(7);
  d.cfg.page_size = 256u << rng.below(3);  // 256 / 512 / 1024
  d.cfg.seed = rng.next();
  d.cfg.undo = rng.chance(0.5) ? UndoStrategy::kByteRange
                               : UndoStrategy::kShadowPage;
  d.cfg.scheduler = rng.chance(0.15) ? SchedulerMode::kConcurrent
                                     : SchedulerMode::kDeterministic;
  d.cfg.cache_capacity_pages = rng.chance(0.25) ? 4 + rng.below(24) : 0;
  d.cfg.gdo.replicate = rng.chance(0.3);
  d.cfg.gdo.fair_readers = rng.chance(0.3);
  static const ProtocolKind kinds[] = {
      ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
      ProtocolKind::kRc, ProtocolKind::kLotecDsd};
  d.cfg.protocol = kinds[rng.below(5)];
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::uint64_t base_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 1;
  Rng rng(base_seed);

  for (int i = 0; i < iterations; ++i) {
    const Draw d = random_setup(rng);
    try {
      const Workload workload(d.spec);
      Cluster cluster(d.cfg);
      const auto results = cluster.execute(workload.instantiate(cluster));
      std::size_t committed = 0, exhausted = 0;
      for (const auto& r : results) {
        if (r.committed) ++committed;
        else if (r.reason == AbortReason::kRetryExhausted) ++exhausted;
      }
      const auto violations = validate_quiescent(cluster);
      if (!violations.empty()) {
        std::cerr << "iteration " << i << " FAILED (workload seed "
                  << d.spec.seed << ", cluster seed " << d.cfg.seed
                  << ", protocol " << to_string(d.cfg.protocol) << "):\n";
        for (const auto& v : violations) std::cerr << "  " << v << "\n";
        return 1;
      }
      std::cout << "iter " << i << ": " << to_string(d.cfg.protocol) << " "
                << d.spec.num_transactions << " txns on " << d.cfg.nodes
                << " nodes -> " << committed << " committed";
      if (exhausted) std::cout << ", " << exhausted << " retry-exhausted";
      std::cout << ", invariants OK\n";
    } catch (const std::exception& e) {
      std::cerr << "iteration " << i << " CRASHED (workload seed "
                << d.spec.seed << ", cluster seed " << d.cfg.seed
                << "): " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "soak complete: " << iterations << " iterations clean\n";
  return 0;
}
