// soak: long-running randomized stress with invariant validation.
//
// Each iteration generates a fresh random workload (random geometry,
// contention, abort injection, protocol, scheduler, cache budget), runs it,
// and validates the quiescent-state invariants plus cross-protocol final-
// state equivalence.  Any violation aborts with a reproduction line.
//
// With --faults each iteration additionally runs a randomized seeded fault
// schedule (crash + restart of two sites, a partition window, background
// message chaos) through the deterministic fault engine and checks the same
// invariants after recovery.
//
//   soak [iterations=50] [base-seed=1] [--faults] [--rebalance] [--only N]
//        [--flight-dump PREFIX] [--transport=wire [--socket-dir DIR]]
//
// --rebalance turns every iteration into an elastic-directory chaos run
// (PROTOCOL.md §15): the consistent-hash ring is on with a randomized
// geometry (virtual nodes, quorum mirror group), and at least three
// leave/join membership cycles fire mid-batch, migrating shards under live
// load.  The full oracle set (serializability, lock discipline, coherence,
// cache epochs, ring ownership) rides along as the check sink and must
// finish clean.  Combined with --faults the background message chaos
// (drop/duplicate/delay) stays, but crash and partition events are
// stripped: a crash wipes a site's committed state, and the version-based
// oracles are only sound on rollback-free histories (CoherenceOracle
// disarms itself on the first crash for the same reason) — membership
// churn is the chaos under test here, crash recovery has its own soak.
//
// --transport=wire runs every iteration on the cross-process wire
// transport (src/wire): one lotec_worker OS process per node.  Chaos is
// restricted to crash/restart (and partitions) — worker processes really
// get SIGKILLed and respawned — and each faulted iteration asserts the
// transport observed matching kill/respawn counts, i.e. worker-death
// recovery actually exercised the process lifecycle.
//
// --only N draws every iteration's configuration (keeping the random
// stream identical) but executes only iteration N — cheap reproduction of
// a failure report.
//
// --flight-dump PREFIX arms the always-on flight recorder: every crash
// event of iteration i dumps a Perfetto-loadable post-mortem to
// PREFIX.<i>.json (CI uploads these when a soak fails).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>

#include "check/oracles.hpp"
#include "sim/validate.hpp"
#include "wire/wire_transport.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

struct Draw {
  WorkloadSpec spec;
  ClusterConfig cfg;
  double read_only_fraction = 0.0;
};

/// Chaos-mode constraints: node faults need the deterministic scheduler and
/// a replicated directory, and every family must survive long enough to see
/// the restart (bounded retry budget stays the default).
void add_random_faults(Draw& d, Rng& rng) {
  d.cfg.scheduler = SchedulerMode::kDeterministic;
  d.cfg.gdo.replicate = true;

  const auto node = [&] {
    return NodeId(static_cast<std::uint32_t>(rng.below(d.cfg.nodes)));
  };
  const NodeId first = node();
  NodeId second = node();
  if (second == first)
    second = NodeId((first.value() + 1) % d.cfg.nodes);
  d.cfg.fault = fault_presets::chaos(first, second, rng.next(),
                                     /*first_crash_tick=*/30 + rng.below(80),
                                     /*window=*/60 + rng.below(120),
                                     /*drop=*/rng.uniform() * 0.03);
  if (rng.chance(0.4)) {
    const std::uint64_t start = 20 + rng.below(100);
    FaultConfig cut = fault_presets::partition_window(
        {node()}, {node()}, start, start + 20 + rng.below(60));
    // A node may not partition against itself; redraw collisions cheaply by
    // skipping the window for this iteration.
    if (cut.events[0].group_a[0] != cut.events[0].group_b[0])
      d.cfg.fault.events.insert(d.cfg.fault.events.end(),
                                cut.events.begin(), cut.events.end());
  }
  d.cfg.fault.duplicate_probability = rng.uniform() * 0.02;
  d.cfg.fault.delay_probability = rng.uniform() * 0.05;
  // Snapshot reads sit out fault runs (read-only families still ride the
  // ordinary lock path under read_only_fraction).
  d.cfg.mv_read = false;
}

Draw random_setup(Rng& rng) {
  Draw d;
  d.spec.num_objects = 4 + rng.below(20);
  d.spec.min_pages = 1 + rng.below(3);
  d.spec.max_pages = d.spec.min_pages + rng.below(8);
  d.spec.num_transactions = 30 + rng.below(120);
  d.spec.contention_theta = rng.uniform() * 1.1;
  d.spec.touched_attr_fraction = 0.15 + rng.uniform() * 0.5;
  d.spec.write_fraction = 0.3 + rng.uniform() * 0.6;
  d.spec.read_method_fraction = rng.uniform() * 0.4;
  d.spec.max_depth = 1 + rng.below(4);
  d.spec.child_probability = rng.uniform() * 0.6;
  d.spec.abort_probability = rng.chance(0.4) ? rng.uniform() * 0.3 : 0.0;
  d.spec.prediction_coverage = rng.chance(0.3) ? 0.4 + rng.uniform() * 0.6
                                               : 1.0;
  d.spec.hierarchical_targets = !rng.chance(0.2);
  d.spec.seed = rng.next();

  d.cfg.nodes = 2 + rng.below(7);
  d.cfg.page_size = 256u << rng.below(3);  // 256 / 512 / 1024
  d.cfg.seed = rng.next();
  d.cfg.undo = rng.chance(0.5) ? UndoStrategy::kByteRange
                               : UndoStrategy::kShadowPage;
  d.cfg.scheduler = rng.chance(0.15) ? SchedulerMode::kConcurrent
                                     : SchedulerMode::kDeterministic;
  d.cfg.cache_capacity_pages = rng.chance(0.25) ? 4 + rng.below(24) : 0;
  d.cfg.gdo.replicate = rng.chance(0.3);
  d.cfg.gdo.fair_readers = rng.chance(0.3);
  static const ProtocolKind kinds[] = {
      ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
      ProtocolKind::kRc, ProtocolKind::kLotecDsd};
  d.cfg.protocol = kinds[rng.below(5)];
  // Sticky lock caching rides along in a third of the runs.  Draw before
  // gating so the random stream (and every later iteration's config) is
  // identical whichever scheduler was picked; the end-of-batch cache drain
  // assumes the deterministic scheduler's quiescence points.
  const bool want_lock_cache = rng.chance(0.3);
  const std::size_t cache_cap = 1 + rng.below(8);
  if (d.cfg.scheduler == SchedulerMode::kDeterministic && want_lock_cache) {
    // A capacity without the cache is no longer silently inert — Cluster
    // construction rejects it — so the capacity draw only lands when the
    // cache itself is on (the draw above keeps the stream identical).
    d.cfg.lock_cache = true;
    d.cfg.lock_cache_capacity = cache_cap;
  }
  // Read-intent and snapshot reads: a third of the runs submit a share of
  // their families as declared read-only; mv_read additionally rides along
  // when the drawn config supports it (deterministic scheduler, no lock
  // cache — fault and wire modes strip it again below).  Everything drawn
  // before gating so the stream stays identical across modes.
  const bool want_read_only = rng.chance(0.35);
  const double read_only_fraction = 0.2 + rng.uniform() * 0.6;
  const bool want_mv = rng.chance(0.6);
  const std::size_t ring_depth = 2 + rng.below(6);
  if (want_read_only) {
    d.read_only_fraction = read_only_fraction;
    if (want_mv && d.cfg.scheduler == SchedulerMode::kDeterministic &&
        !d.cfg.lock_cache) {
      d.cfg.mv_read = true;
      d.cfg.mv_version_ring = ring_depth;
    }
  }
  return d;
}

/// Constrain one drawn iteration to the elastic directory's envelope and
/// schedule the membership churn.  Applied AFTER the normal draws (and after
/// add_random_faults) so the random stream is identical with and without
/// --rebalance.
void constrain_for_rebalance(Draw& d, Rng& rng) {
  d.cfg.scheduler = SchedulerMode::kDeterministic;
  d.cfg.gdo.replicate = true;
  d.cfg.mv_read = false;     // ring + snapshot reads are rejected
  d.cfg.lock_cache = false;  // ring + cached-holder leases are rejected
  d.cfg.lock_cache_capacity = 0;
  if (d.cfg.nodes < 4) d.cfg.nodes = 4;  // room for a group and a leaver

  d.cfg.gdo.ring.enabled = true;
  d.cfg.gdo.ring.virtual_nodes = std::size_t{8} << rng.below(3);  // 8/16/32
  d.cfg.gdo.ring.mirror_group =
      1 + rng.below(std::min<std::size_t>(3, d.cfg.nodes - 1));
  d.cfg.gdo.ring.migration_batch = 1 + rng.below(4);

  // Crash and partition events roll state back (see the header comment);
  // keep only the delivery-neutral message chaos from --faults.
  std::erase_if(d.cfg.fault.events, [](const FaultEvent& e) {
    return e.action != FaultAction::kRingLeave &&
           e.action != FaultAction::kRingJoin;
  });
  d.cfg.fault.drop_probability = 0.0;

  // At least three leave/join cycles over two distinct victims, early
  // enough that the batch's message stream reaches every event.
  const NodeId first(static_cast<std::uint32_t>(rng.below(d.cfg.nodes)));
  const NodeId second((first.value() + 1 + rng.below(d.cfg.nodes - 1)) %
                      d.cfg.nodes);
  const FaultConfig churn = fault_presets::rebalance(
      {first, second}, /*cycles=*/3 + rng.below(2),
      /*first_tick=*/15 + rng.below(30), /*window=*/25 + rng.below(35));
  d.cfg.fault.events.insert(d.cfg.fault.events.end(), churn.events.begin(),
                            churn.events.end());
  // Enough traffic that the logical clock reaches the whole churn schedule.
  if (d.spec.num_transactions < 80) d.spec.num_transactions = 80;
}

/// Constrain one drawn iteration to what the wire transport supports:
/// deterministic scheduler, no message chaos (drop/duplicate/delay), no
/// drop events — crash/restart and partitions stay, as real process kills.
/// Applied AFTER the draws so the random stream is identical with and
/// without --transport=wire.
void constrain_for_wire(Draw& d) {
  d.cfg.wire.enabled = true;
  d.cfg.scheduler = SchedulerMode::kDeterministic;
  d.cfg.fault.drop_probability = 0.0;
  d.cfg.fault.duplicate_probability = 0.0;
  d.cfg.fault.delay_probability = 0.0;
  std::erase_if(d.cfg.fault.events, [](const FaultEvent& e) {
    return e.action == FaultAction::kDropMessage;
  });
  d.cfg.mv_read = false;  // snapshot fetches are not wired yet
}

}  // namespace

int main(int argc, char** argv) {
  bool with_faults = false;
  bool wire_transport = false;
  bool rebalance = false;
  int only = -1;
  std::string flight_prefix;
  std::string socket_dir;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0)
      with_faults = true;
    else if (std::strcmp(argv[i], "--rebalance") == 0)
      rebalance = true;
    else if (std::strcmp(argv[i], "--transport=wire") == 0)
      wire_transport = true;
    else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
      only = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc)
      flight_prefix = argv[++i];
    else if (std::strcmp(argv[i], "--socket-dir") == 0 && i + 1 < argc)
      socket_dir = argv[++i];
    else
      positional.push_back(argv[i]);
  }
  const int iterations =
      positional.size() > 0 ? std::atoi(positional[0]) : 50;
  const std::uint64_t base_seed =
      positional.size() > 1 ? std::strtoull(positional[1], nullptr, 0) : 1;
  if (rebalance && wire_transport) {
    std::cerr << "soak: --rebalance cannot run on --transport=wire (shard "
                 "migration is in-process state; see ClusterConfig "
                 "validation)\n";
    return 2;
  }
  Rng rng(base_seed);

  for (int i = 0; i < iterations; ++i) {
    Draw d = random_setup(rng);
    if (with_faults) add_random_faults(d, rng);
    if (rebalance) constrain_for_rebalance(d, rng);
    if (wire_transport) {
      constrain_for_wire(d);
      // Pin the worker sockets so `lotec_top --dir <dir> --nodes N` can
      // scrape this soak live (PROTOCOL.md §16); a fresh temp dir per
      // iteration would leave the watcher nothing stable to connect to.
      d.cfg.wire.socket_dir = socket_dir;
    }
    if (only >= 0 && i != only) continue;
    if (!flight_prefix.empty())
      d.cfg.obs.flight_dump = flight_prefix + "." + std::to_string(i) + ".json";
    try {
      // Rebalance mode runs the full oracle set through the check sink;
      // the sinks must outlive the cluster.
      check::SerializabilityOracle ser_oracle;
      check::LockDisciplineOracle lock_oracle;
      check::CoherenceOracle coherence_oracle;
      check::CacheEpochOracle cache_oracle;
      check::RingOwnershipOracle ring_oracle;
      check::FanoutSink fanout;
      if (rebalance) {
        fanout.add(&ser_oracle);
        fanout.add(&lock_oracle);
        fanout.add(&coherence_oracle);
        fanout.add(&cache_oracle);
        fanout.add(&ring_oracle);
        d.cfg.check_sink = &fanout;
      }
      const Workload workload(d.spec);
      Cluster cluster(d.cfg);
      const auto results =
          cluster.execute(workload.instantiate(cluster, d.read_only_fraction));
      std::size_t committed = 0, exhausted = 0, node_failed = 0;
      std::uint64_t fault_retries = 0;
      for (const auto& r : results) {
        if (r.committed) ++committed;
        else if (r.reason == AbortReason::kRetryExhausted) ++exhausted;
        else if (r.reason == AbortReason::kNodeFailure) ++node_failed;
        fault_retries += static_cast<std::uint64_t>(r.fault_retries);
      }
      const auto violations = validate_quiescent(cluster);
      if (!violations.empty()) {
        std::cerr << "iteration " << i << " FAILED (workload seed "
                  << d.spec.seed << ", cluster seed " << d.cfg.seed
                  << ", protocol " << to_string(d.cfg.protocol) << "):\n";
        for (const auto& v : violations) std::cerr << "  " << v << "\n";
        return 1;
      }
      if (rebalance) {
        check::OracleBase* oracles[] = {&ser_oracle, &lock_oracle,
                                        &coherence_oracle, &cache_oracle,
                                        &ring_oracle};
        for (check::OracleBase* o : oracles) {
          if (const auto v = o->finish()) {
            std::cerr << "iteration " << i << " FAILED (workload seed "
                      << d.spec.seed << ", cluster seed " << d.cfg.seed
                      << ", protocol " << to_string(d.cfg.protocol)
                      << "): oracle " << v->oracle << ": " << v->detail
                      << "\n";
            return 1;
          }
        }
        if (cluster.gdo().ring_epoch() == 0) {
          std::cerr << "iteration " << i << " FAILED (workload seed "
                    << d.spec.seed << ", cluster seed " << d.cfg.seed
                    << "): membership churn never fired — the batch's "
                       "logical clock never reached the schedule\n";
          return 1;
        }
      }
      std::cout << "iter " << i << ": " << to_string(d.cfg.protocol) << " "
                << d.spec.num_transactions << " txns on " << d.cfg.nodes
                << " nodes -> " << committed << " committed";
      if (exhausted) std::cout << ", " << exhausted << " retry-exhausted";
      if (node_failed) std::cout << ", " << node_failed << " node-failure";
      if (with_faults) {
        const FaultStats fs = cluster.observe().fault_engine()->stats();
        std::cout << " [faults: " << fs.crashes << " crashes, " << fs.dropped
                  << " dropped, " << fault_retries << " retries, "
                  << fs.locks_reclaimed << " leases reclaimed, "
                  << fs.pages_restored << " pages restored]";
        if (wire_transport) {
          // Worker-death recovery must have really happened: every crash
          // event SIGKILLed a worker process and every restart respawned
          // one (finalize() restarts stragglers, so counts balance).
          const auto* wt = dynamic_cast<const wire::WireTransport*>(
              &cluster.observe().transport());
          if (wt == nullptr) {
            std::cerr << "iteration " << i
                      << " FAILED: --transport=wire did not select the "
                         "WireTransport backend\n";
            return 1;
          }
          const std::uint64_t kills = wt->supervisor().kills();
          const std::uint64_t respawns = wt->supervisor().respawns();
          std::cout << " [wire: " << kills << " worker kills, " << respawns
                    << " respawns]";
          if (kills != fs.crashes || respawns != kills) {
            std::cerr << "\niteration " << i << " FAILED: wire transport saw "
                      << kills << " kills / " << respawns << " respawns but "
                      << "the fault engine reports " << fs.crashes
                      << " crashes — worker-death recovery out of sync\n";
            return 1;
          }
        }
      }
      if (rebalance) {
        const auto& counters = cluster.observe().metrics().counters();
        const auto count = [&](const char* key) -> std::uint64_t {
          const auto it = counters.find(key);
          return it == counters.end() ? 0 : it->second;
        };
        std::cout << " [ring: epoch " << cluster.gdo().ring_epoch() << ", "
                  << count("ring.migrations") << " migrations, "
                  << count("ring.redirects") << " redirects, "
                  << ring_oracle.serves() << " serves checked]";
      }
      std::cout << ", invariants OK\n";
    } catch (const std::exception& e) {
      std::cerr << "iteration " << i << " CRASHED (workload seed "
                << d.spec.seed << ", cluster seed " << d.cfg.seed
                << "): " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "soak complete: " << iterations << " iterations clean\n";
  return 0;
}
