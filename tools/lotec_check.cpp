// lotec_check: systematic schedule exploration & invariant checking.
//
// Explores message-delivery interleavings of a small checking scenario
// through the token scheduler's decision points and runs the invariant
// oracles (serializability, O2PL lock discipline, page coherence,
// lock-cache epochs) over every schedule.  On a violation the counterexample
// trace is delta-debugged to a minimal replayable form and verified to
// replay bit-identically twice.
//
//   lotec_check --mode=random --scenario=tiny --schedules=2000
//   lotec_check --mode=dfs --scenario=tiny --depth=14 --budget=60
//   lotec_check --replay=counterexample.trace --chrome-out=cx.json
//
// Exit codes: 0 = explored clean, 1 = invariant violation (counterexample
// printed / written), 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/checker.hpp"

using namespace lotec;
using namespace lotec::check;

namespace {

struct Args {
  CheckOptions opts;
  std::string trace_out;
  std::string replay_path;
};

void usage() {
  std::cout <<
      "lotec_check — schedule exploration & serializability checking\n\n"
      "Exploration:\n"
      "  --mode=M             random | pct | dfs (default random)\n"
      "  --scenario=S         tiny | small | mixed (default tiny)\n"
      "  --schedules=N        max schedules to explore (1000)\n"
      "  --budget=SECONDS     wall-clock budget, 0 = unlimited (0)\n"
      "  --seed=N             exploration seed (42)\n"
      "  --changepoints=N     PCT priority changepoints, bug depth d-1 (3)\n"
      "  --depth=N            DFS branching depth bound (18)\n"
      "Cluster:\n"
      "  --protocol=P         cotec | otec | lotec | rc | lotec-dsd (lotec)\n"
      "  --lock-cache[=CAP]   enable inter-family lock caching (CAP = LRU\n"
      "                       budget, 0/omitted = unbounded)\n"
      "Counterexamples:\n"
      "  --no-minimize        skip delta-debugging the counterexample\n"
      "  --minimize-replays=N replay budget for minimization (300)\n"
      "  --trace-out=FILE     write the counterexample decision trace\n"
      "  --chrome-out=FILE    write a Chrome trace of the counterexample\n"
      "                       schedule (open in Perfetto)\n"
      "  --replay=FILE        replay a saved decision trace instead of\n"
      "                       exploring (verifies determinism: runs twice)\n"
      "\nExit codes: 0 clean, 1 violation found, 2 usage error.\n";
}

ProtocolKind parse_protocol(const std::string& name) {
  if (name == "cotec") return ProtocolKind::kCotec;
  if (name == "otec") return ProtocolKind::kOtec;
  if (name == "lotec") return ProtocolKind::kLotec;
  if (name == "rc") return ProtocolKind::kRc;
  if (name == "lotec-dsd") return ProtocolKind::kLotecDsd;
  throw UsageError("unknown protocol '" + name + "'");
}

ExploreMode parse_mode(const std::string& name) {
  if (name == "random") return ExploreMode::kRandom;
  if (name == "pct") return ExploreMode::kPct;
  if (name == "dfs") return ExploreMode::kDfs;
  throw UsageError("unknown mode '" + name + "' (random|pct|dfs)");
}

bool parse_one(Args& args, const std::string& arg) {
  const auto eq = arg.find('=');
  const std::string key = arg.substr(0, eq);
  const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
  const auto u = [&] { return std::stoull(val); };

  if (key == "--mode") args.opts.mode = parse_mode(val);
  else if (key == "--scenario") args.opts.scenario = check_scenario(val);
  else if (key == "--schedules") args.opts.max_schedules = u();
  else if (key == "--budget") args.opts.budget_seconds = std::stod(val);
  else if (key == "--seed") args.opts.seed = u();
  else if (key == "--changepoints")
    args.opts.pct_changepoints = static_cast<std::uint32_t>(u());
  else if (key == "--depth") args.opts.dfs_max_depth = u();
  else if (key == "--protocol") args.opts.protocol = parse_protocol(val);
  else if (key == "--lock-cache") {
    args.opts.lock_cache = true;
    args.opts.lock_cache_capacity = val.empty() ? 0 : u();
  }
  else if (key == "--no-minimize") args.opts.minimize = false;
  else if (key == "--minimize-replays") args.opts.max_minimize_replays = u();
  else if (key == "--trace-out") args.trace_out = val;
  else if (key == "--chrome-out") args.opts.chrome_out = val;
  else if (key == "--replay") args.replay_path = val;
  // Undocumented: the mutation demo — break Moss retained-lock inheritance
  // and let the oracles find the counterexample (tests/check_explore).
  else if (key == "--break-retention") args.opts.break_retention = true;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    try {
      if (!parse_one(args, arg)) {
        std::cerr << "unknown flag: " << arg << " (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad flag " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  try {
    ScheduleChecker checker(args.opts);
    CheckReport report;
    if (!args.replay_path.empty()) {
      std::ifstream is(args.replay_path);
      if (!is) {
        std::cerr << "cannot open trace file " << args.replay_path << "\n";
        return 2;
      }
      std::stringstream buf;
      buf << is.rdbuf();
      report = checker.replay(DecisionTrace::parse(buf.str()));
    } else {
      const char* mode = args.opts.mode == ExploreMode::kRandom ? "random"
                         : args.opts.mode == ExploreMode::kPct  ? "pct"
                                                                : "dfs";
      std::cout << "exploring scenario '" << args.opts.scenario.name
                << "' under " << to_string(args.opts.protocol) << ", mode="
                << mode << ", max " << args.opts.max_schedules
                << " schedules\n";
      report = checker.run();
    }

    std::cout << report.summary() << "\n";
    if (report.violation && !args.trace_out.empty()) {
      std::ofstream os(args.trace_out);
      os << report.counterexample.serialize();
      std::cout << "counterexample trace -> " << args.trace_out << "\n";
    }
    if (report.violation && !args.opts.chrome_out.empty())
      std::cout << "chrome trace -> " << args.opts.chrome_out << "\n";
    return report.violation ? 1 : 0;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
