# Assert a command exits with a specific code.  CTest treats any nonzero
# exit as failure, so tools with a multi-code contract (trace_report,
# bench_check) are tested through this script:
#
#   cmake -DCMD=<exe> [-DARGS="a;b;c"] -DEXPECTED=<code> -P expect_exit.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD= and -DEXPECTED=")
endif()
if(DEFINED ARGS)
  separate_arguments(ARGS)
else()
  set(ARGS "")
endif()
execute_process(COMMAND ${CMD} ${ARGS} RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc STREQUAL "${EXPECTED}")
  message(FATAL_ERROR
          "${CMD} ${ARGS}: expected exit ${EXPECTED}, got '${rc}'\n"
          "stdout:\n${out}\nstderr:\n${err}")
endif()
